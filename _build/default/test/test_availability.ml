open Qp_quorum
module Rng = Qp_util.Rng

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Failure probability                                                 *)
(* ------------------------------------------------------------------ *)

let test_singleton_failure () =
  let s = Simple_qs.singleton 3 1 in
  (* System fails iff element 1 fails. *)
  check_float "fp = p" 0.3 (Availability.failure_probability s 0.3)

let test_triangle_failure () =
  (* 2-of-3 majority fails iff >= 2 nodes fail:
     3 p^2 (1-p) + p^3. *)
  let s = Simple_qs.triangle () in
  let p = 0.2 in
  let expected = (3. *. p *. p *. (1. -. p)) +. (p ** 3.) in
  check_float "majority formula" expected (Availability.failure_probability s p)

let test_failure_extremes () =
  let s = Simple_qs.triangle () in
  check_float "p=0" 0. (Availability.failure_probability s 0.);
  check_float "p=1" 1. (Availability.failure_probability s 1.)

let test_majority_beats_singleton_below_half () =
  (* Classic fact: for p < 1/2 the majority system is MORE available
     than a single node; at p > 1/2 it is worse. *)
  let maj = Majority_qs.make ~n:5 ~t:3 in
  let single = Simple_qs.singleton 5 0 in
  let fp s p = Availability.failure_probability s p in
  Alcotest.(check bool) "better at 0.2" true (fp maj 0.2 < fp single 0.2);
  Alcotest.(check bool) "worse at 0.8" true (fp maj 0.8 > fp single 0.8)

let test_mc_matches_exact () =
  let rng = Rng.create 3 in
  let s = Grid_qs.make 3 in
  let p = 0.3 in
  let exact = Availability.failure_probability s p in
  let mc = Availability.failure_probability_mc rng s p ~samples:40_000 in
  Alcotest.(check bool) "MC close to exact" true (Float.abs (mc -. exact) < 0.01)

let test_failure_guard () =
  let s = Quorum.make ~universe:23 [| Array.init 23 (fun u -> u) |] in
  Alcotest.check_raises "too big"
    (Invalid_argument "Availability.failure_probability: universe > 22") (fun () ->
      ignore (Availability.failure_probability s 0.1))

(* ------------------------------------------------------------------ *)
(* Resilience / transversals                                           *)
(* ------------------------------------------------------------------ *)

let test_transversal () =
  let s = Simple_qs.triangle () in
  Alcotest.(check bool) "pair hits all" true (Availability.is_transversal s [| 0; 1 |]);
  Alcotest.(check bool) "single misses" false (Availability.is_transversal s [| 0 |])

let test_resilience_majority () =
  (* Majority t-of-n: killing any n-t+1 elements kills every quorum;
     any n-t failures leave one alive. Min transversal = n-t+1. *)
  let s = Majority_qs.make ~n:7 ~t:4 in
  Alcotest.(check int) "resilience n-t" 3 (Availability.resilience s)

let test_resilience_singleton_star () =
  Alcotest.(check int) "singleton resilience 0" 0
    (Availability.resilience (Simple_qs.singleton 4 2));
  (* Star: hub 0 is a transversal by itself. *)
  Alcotest.(check int) "star resilience 0" 0 (Availability.resilience (Simple_qs.star 5));
  (* Wheel: hub alone does NOT hit the rim quorum; {hub} u {rim elt}
     needed... actually {hub, any rim} hits spokes via hub and the rim
     quorum via the rim element -> min transversal 2. *)
  Alcotest.(check int) "wheel resilience 1" 1 (Availability.resilience (Simple_qs.wheel 5))

let test_resilience_grid () =
  (* Grid k: killing a full row (k elements) kills every quorum (each
     quorum contains a full row... no: quorum = row i + column j; a
     dead row r kills quorums with i = r, and every other quorum
     contains one element of row r via its column). Min transversal =
     k. *)
  let s = Grid_qs.make 3 in
  Alcotest.(check int) "grid resilience k-1" 2 (Availability.resilience s)

let test_resilience_fpp () =
  (* A line of PG(2,q) is a transversal (it meets every line), so the
     min transversal has size <= q+1; projective duality gives >= q+1
     ... for q=2: resilience 2. *)
  let s = Fpp_qs.make 2 in
  Alcotest.(check int) "fpp resilience q" 2 (Availability.resilience s)

(* ------------------------------------------------------------------ *)
(* Load lower bound                                                    *)
(* ------------------------------------------------------------------ *)

let test_naor_wool_bound () =
  (* FPP meets the sqrt bound with equality under uniform strategy. *)
  let q = 3 in
  let s = Fpp_qs.make q in
  let p = Strategy.uniform s in
  let bound = Availability.naor_wool_load_lower_bound s in
  check_float "fpp tight" bound (Strategy.system_load s p);
  (* Grid's uniform load also matches its (2k-1)/k^2 value and is
     >= the bound. *)
  let g = Grid_qs.make 4 in
  let pg = Strategy.uniform g in
  Alcotest.(check bool) "grid above bound" true
    (Strategy.system_load g pg +. 1e-12 >= Availability.naor_wool_load_lower_bound g)

let prop_load_above_naor_wool =
  QCheck.Test.make ~name:"every uniform strategy respects the Naor-Wool bound" ~count:30
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let s =
        match Rng.int rng 4 with
        | 0 -> Grid_qs.make (2 + Rng.int rng 3)
        | 1 ->
            let n = 3 + Rng.int rng 6 in
            Majority_qs.make ~n ~t:((n / 2) + 1)
        | 2 -> Simple_qs.wheel (3 + Rng.int rng 5)
        | _ -> Walls_qs.make [ 1 + Rng.int rng 2; 1 + Rng.int rng 3; 1 + Rng.int rng 3 ]
      in
      let p = Strategy.uniform s in
      Strategy.system_load s p +. 1e-9 >= Availability.naor_wool_load_lower_bound s)

(* ------------------------------------------------------------------ *)
(* Optimal-load strategies (Naor-Wool L(Q) via LP)                     *)
(* ------------------------------------------------------------------ *)

let test_strategy_lp_fpp_tight () =
  (* FPP is load-perfect: L(Q) = (q+1)/n, met by the uniform strategy
     and equal to the Naor-Wool bound. *)
  let q = 3 in
  let s = Fpp_qs.make q in
  let r = Strategy_lp.optimal s in
  check_float "L(Q) = (q+1)/n" (float_of_int (q + 1) /. float_of_int (Quorum.universe s))
    r.Strategy_lp.load;
  Alcotest.(check bool) "meets NW bound" true (Strategy_lp.meets_naor_wool_bound s)

let test_strategy_lp_grid () =
  (* Grid's uniform strategy is optimal [Naor-Wool]: L = (2k-1)/k^2. *)
  let k = 3 in
  let s = Grid_qs.make k in
  let r = Strategy_lp.optimal s in
  check_float "L(Q) = (2k-1)/k^2" (Grid_qs.element_load k) r.Strategy_lp.load

let test_strategy_lp_triangle_and_majority () =
  let r = Strategy_lp.optimal (Simple_qs.triangle ()) in
  check_float "triangle 2/3" (2. /. 3.) r.Strategy_lp.load;
  let m = Majority_qs.make ~n:5 ~t:3 in
  check_float "majority t/n" (3. /. 5.) (Strategy_lp.optimal m).Strategy_lp.load

let test_strategy_lp_dominates_uniform () =
  (* L(Q) never exceeds the uniform strategy's max load, and the
     witness strategy actually achieves the LP value. *)
  List.iter
    (fun s ->
      let r = Strategy_lp.optimal s in
      let uniform_load = Strategy.system_load s (Strategy.uniform s) in
      Alcotest.(check bool) "L <= uniform load" true
        (r.Strategy_lp.load <= uniform_load +. 1e-9);
      check_float "witness achieves L" r.Strategy_lp.load
        (Strategy.system_load s r.Strategy_lp.strategy);
      Alcotest.(check bool) "L >= NW bound" true
        (r.Strategy_lp.load +. 1e-9 >= Availability.naor_wool_load_lower_bound s))
    [
      Simple_qs.wheel 7; Walls_qs.make [ 1; 2; 3 ]; Voting_qs.make [| 3; 1; 1; 1; 1 |];
      Tree_qs.make 2;
    ]

let test_strategy_lp_star_skewed () =
  (* Star: hub is in every quorum, so L(Q) = 1 no matter the
     strategy - the classic worst case. *)
  let r = Strategy_lp.optimal (Simple_qs.star 6) in
  check_float "hub load 1" 1. r.Strategy_lp.load

(* ------------------------------------------------------------------ *)
(* Weighted voting                                                     *)
(* ------------------------------------------------------------------ *)

let test_voting_equals_majority_on_unit_votes () =
  let n = 5 in
  let v = Voting_qs.make (Array.make n 1) in
  let m = Majority_qs.make ~n ~t:3 in
  Alcotest.(check int) "same count" (Quorum.n_quorums m) (Quorum.n_quorums v);
  (* Same families as sets. *)
  let canon s =
    List.sort compare (Array.to_list (Array.map Array.to_list (Quorum.quorums s)))
  in
  Alcotest.(check bool) "same quorums" true (canon v = canon m)

let test_voting_weighted () =
  (* Votes [3;1;1;1]: total 6, need 4. Minimal quorums: {0,1}, {0,2},
     {0,3} — the light elements together only muster 3 votes. *)
  let s = Voting_qs.make [| 3; 1; 1; 1 |] in
  Alcotest.(check int) "count" 3 (Quorum.n_quorums s);
  Alcotest.(check bool) "intersecting" true (Quorum.all_intersecting s);
  Alcotest.(check bool) "coterie" true (Quorum.is_coterie s);
  Alcotest.(check int) "threshold" 4 (Voting_qs.threshold [| 3; 1; 1; 1 |]);
  Alcotest.(check int) "votes of {1,2,3}" 3 (Voting_qs.quorum_votes [| 3; 1; 1; 1 |] [| 1; 2; 3 |])

let test_voting_dictator () =
  (* One element with a strict majority of votes is a dictator: the
     only minimal quorum is the singleton. *)
  let s = Voting_qs.make [| 5; 1; 1 |] in
  Alcotest.(check int) "one quorum" 1 (Quorum.n_quorums s);
  Alcotest.(check (array int)) "dictator" [| 0 |] (Quorum.quorum s 0)

let test_voting_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Voting_qs.make: empty vote assignment")
    (fun () -> ignore (Voting_qs.make [||]));
  Alcotest.check_raises "zero votes" (Invalid_argument "Voting_qs.make: non-positive votes")
    (fun () -> ignore (Voting_qs.make [| 1; 0 |]))

let prop_voting_intersects =
  QCheck.Test.make ~name:"weighted voting systems pairwise intersect" ~count:30
    QCheck.(list_of_size (QCheck.Gen.int_range 1 7) (int_range 1 5))
    (fun votes ->
      votes = [] || Quorum.all_intersecting (Voting_qs.make (Array.of_list votes)))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_load_above_naor_wool; prop_voting_intersects ]

let suites =
  [
    ( "quorum.availability",
      [
        Alcotest.test_case "singleton" `Quick test_singleton_failure;
        Alcotest.test_case "triangle formula" `Quick test_triangle_failure;
        Alcotest.test_case "extremes" `Quick test_failure_extremes;
        Alcotest.test_case "majority vs singleton" `Quick test_majority_beats_singleton_below_half;
        Alcotest.test_case "monte carlo" `Quick test_mc_matches_exact;
        Alcotest.test_case "size guard" `Quick test_failure_guard;
      ] );
    ( "quorum.resilience",
      [
        Alcotest.test_case "transversal" `Quick test_transversal;
        Alcotest.test_case "majority" `Quick test_resilience_majority;
        Alcotest.test_case "singleton + star + wheel" `Quick test_resilience_singleton_star;
        Alcotest.test_case "grid" `Quick test_resilience_grid;
        Alcotest.test_case "fpp" `Quick test_resilience_fpp;
        Alcotest.test_case "naor-wool bound" `Quick test_naor_wool_bound;
      ] );
    ( "quorum.strategy_lp",
      [
        Alcotest.test_case "fpp tight" `Quick test_strategy_lp_fpp_tight;
        Alcotest.test_case "grid" `Quick test_strategy_lp_grid;
        Alcotest.test_case "triangle + majority" `Quick test_strategy_lp_triangle_and_majority;
        Alcotest.test_case "dominates uniform" `Quick test_strategy_lp_dominates_uniform;
        Alcotest.test_case "star skew" `Quick test_strategy_lp_star_skewed;
      ] );
    ( "quorum.voting",
      [
        Alcotest.test_case "unit votes = majority" `Quick test_voting_equals_majority_on_unit_votes;
        Alcotest.test_case "weighted" `Quick test_voting_weighted;
        Alcotest.test_case "dictator" `Quick test_voting_dictator;
        Alcotest.test_case "validation" `Quick test_voting_rejects;
      ] );
    ("quorum.availability_properties", qcheck_tests);
  ]
