open Qp_quorum
module Rng = Qp_util.Rng
module Combin = Qp_util.Combin

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Core                                                                *)
(* ------------------------------------------------------------------ *)

let test_make_normalizes () =
  let s = Quorum.make ~universe:4 [| [| 2; 0; 2; 1 |]; [| 1; 3 |] |] in
  Alcotest.(check (array int)) "sorted dedup" [| 0; 1; 2 |] (Quorum.quorum s 0);
  Alcotest.(check int) "sizes" 2 (Quorum.quorum_size s 1)

let test_make_rejects () =
  Alcotest.check_raises "empty family" (Invalid_argument "Quorum.make: empty family")
    (fun () -> ignore (Quorum.make ~universe:3 [||]));
  Alcotest.check_raises "empty quorum" (Invalid_argument "Quorum.make: empty quorum")
    (fun () -> ignore (Quorum.make ~universe:3 [| [||] |]));
  Alcotest.check_raises "out of range" (Invalid_argument "Quorum.make: element out of range")
    (fun () -> ignore (Quorum.make ~universe:3 [| [| 5 |] |]));
  Alcotest.check_raises "non-intersecting"
    (Invalid_argument "Quorum.make: family is not pairwise intersecting") (fun () ->
      ignore (Quorum.make ~universe:4 [| [| 0; 1 |]; [| 2; 3 |] |]))

let test_mem_and_intersection () =
  let q1 = [| 0; 2; 4; 6 |] and q2 = [| 1; 2; 3; 6 |] in
  Alcotest.(check bool) "mem yes" true (Quorum.mem q1 4);
  Alcotest.(check bool) "mem no" false (Quorum.mem q1 3);
  Alcotest.(check bool) "intersect" true (Quorum.intersect q1 q2);
  Alcotest.(check (array int)) "intersection" [| 2; 6 |] (Quorum.intersection q1 q2);
  Alcotest.(check bool) "disjoint" false (Quorum.intersect [| 0; 1 |] [| 2; 3 |])

let test_element_quorums_degree () =
  let s = Simple_qs.triangle () in
  Alcotest.(check (list int)) "elt 0 in quorums" [ 0; 1 ] (Quorum.element_quorums s 0);
  Alcotest.(check (array int)) "degrees" [| 2; 2; 2 |] (Quorum.degree s)

let test_coterie_detection () =
  let s = Simple_qs.triangle () in
  Alcotest.(check bool) "triangle is coterie" true (Quorum.is_coterie s);
  let dominated = Quorum.make ~universe:3 [| [| 0; 1 |]; [| 0; 1; 2 |] |] in
  Alcotest.(check bool) "dominated not coterie" false (Quorum.is_coterie dominated)

(* ------------------------------------------------------------------ *)
(* Strategy                                                            *)
(* ------------------------------------------------------------------ *)

let test_strategy_uniform_valid () =
  let s = Grid_qs.make 3 in
  let p = Strategy.uniform s in
  Strategy.validate s p;
  check_float "each prob" (1. /. 9.) p.(0)

let test_strategy_validate_rejects () =
  let s = Simple_qs.triangle () in
  Alcotest.check_raises "bad length" (Invalid_argument "Strategy.validate: length mismatch")
    (fun () -> Strategy.validate s [| 1.0 |]);
  Alcotest.check_raises "negative"
    (Invalid_argument "Strategy.validate: negative probability") (fun () ->
      Strategy.validate s [| 1.5; -0.5; 0. |]);
  Alcotest.check_raises "bad sum"
    (Invalid_argument "Strategy.validate: probabilities do not sum to 1") (fun () ->
      Strategy.validate s [| 0.1; 0.1; 0.1 |])

let test_strategy_loads_triangle () =
  let s = Simple_qs.triangle () in
  let p = Strategy.uniform s in
  let loads = Strategy.loads s p in
  Array.iter (fun l -> check_float "balanced load" (2. /. 3.) l) loads;
  check_float "system load" (2. /. 3.) (Strategy.system_load s p);
  check_float "total = E|Q|" 2. (Strategy.total_load s p)

let test_strategy_loads_match_element_load () =
  let s = Grid_qs.make 3 in
  let p = Strategy.uniform s in
  let loads = Strategy.loads s p in
  for u = 0 to Quorum.universe s - 1 do
    check_float "agree" (Strategy.element_load s p u) loads.(u)
  done

let test_strategy_of_weights_and_mix () =
  let s = Simple_qs.triangle () in
  let p = Strategy.of_weights s [| 1.; 1.; 2. |] in
  check_float "normalized" 0.5 p.(2);
  let q = Strategy.uniform s in
  let m = Strategy.mix p q 0.5 in
  Strategy.validate s m;
  check_float "mixed" ((0.5 *. 0.25) +. (1. /. 6.)) m.(0)

let test_strategy_sampling_frequencies () =
  let p = [| 0.2; 0.3; 0.5 |] in
  let rng = Rng.create 99 in
  let counts = Array.make 3 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let i = Strategy.sample rng p in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int trials in
      Alcotest.(check bool) "frequency close" true (Float.abs (freq -. p.(i)) < 0.01))
    counts

(* ------------------------------------------------------------------ *)
(* Grid                                                                *)
(* ------------------------------------------------------------------ *)

let test_grid_shape () =
  let k = 4 in
  let s = Grid_qs.make k in
  Alcotest.(check int) "universe" (k * k) (Quorum.universe s);
  Alcotest.(check int) "quorum count" (k * k) (Quorum.n_quorums s);
  Array.iter
    (fun q -> Alcotest.(check int) "quorum size 2k-1" ((2 * k) - 1) (Array.length q))
    (Quorum.quorums s);
  Alcotest.(check bool) "intersecting" true (Quorum.all_intersecting s);
  Alcotest.(check int) "side" k (Grid_qs.side s)

let test_grid_quorum_contents () =
  let k = 3 in
  let s = Grid_qs.make k in
  let q = Quorum.quorum s (Grid_qs.quorum_index k 1 2) in
  (* Row 1 = {3,4,5}; column 2 = {2,5,8}. *)
  Alcotest.(check (array int)) "row+col" [| 2; 3; 4; 5; 8 |] q

let test_grid_load () =
  let k = 3 in
  let s = Grid_qs.make k in
  let p = Grid_qs.uniform_strategy s in
  let loads = Strategy.loads s p in
  Array.iter (fun l -> check_float "uniform load" (Grid_qs.element_load k) l) loads

let test_grid_k1 () =
  let s = Grid_qs.make 1 in
  Alcotest.(check int) "single quorum" 1 (Quorum.n_quorums s)

(* ------------------------------------------------------------------ *)
(* Majority                                                            *)
(* ------------------------------------------------------------------ *)

let test_majority_shape () =
  let s = Majority_qs.make ~n:7 ~t:4 in
  Alcotest.(check int) "count" (Combin.binomial 7 4) (Quorum.n_quorums s);
  Alcotest.(check bool) "intersecting" true (Quorum.all_intersecting s);
  Alcotest.(check bool) "coterie" true (Quorum.is_coterie s)

let test_majority_rejects_non_intersecting_threshold () =
  Alcotest.check_raises "t too small"
    (Invalid_argument "Majority_qs: 2t > n required for intersection") (fun () ->
      ignore (Majority_qs.make ~n:6 ~t:3))

let test_majority_uniform_load () =
  let n = 7 and t = 4 in
  let s = Majority_qs.make ~n ~t in
  let p = Strategy.uniform s in
  let loads = Strategy.loads s p in
  Array.iter (fun l -> check_float "load t/n" (float_of_int t /. float_of_int n) l) loads

let test_majority_counting_identity () =
  (* Eq. (19) counting: sum over i of C(n-i-1, t-1) = C(n, t). *)
  let n = 9 and t = 5 in
  let total = ref 0 in
  for i = 0 to n - t do
    total := !total + Majority_qs.quorums_containing_first_of ~n ~t i
  done;
  Alcotest.(check int) "partition of family" (Combin.binomial n t) !total

let test_majority_sampling () =
  let rng = Rng.create 4 in
  for _ = 1 to 100 do
    let q = Majority_qs.sample_quorum rng ~n:20 ~t:11 in
    Alcotest.(check int) "size t" 11 (Array.length q);
    let sorted = Array.copy q in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "sorted distinct" sorted q
  done

(* ------------------------------------------------------------------ *)
(* Tree                                                                *)
(* ------------------------------------------------------------------ *)

let test_tree_counts () =
  Alcotest.(check int) "depth 0" 1 (Tree_qs.n_quorums 0);
  Alcotest.(check int) "depth 1" 3 (Tree_qs.n_quorums 1);
  Alcotest.(check int) "depth 2" 15 (Tree_qs.n_quorums 2);
  let s = Tree_qs.make 2 in
  Alcotest.(check int) "universe" 7 (Quorum.universe s);
  Alcotest.(check int) "enumerated" 15 (Quorum.n_quorums s);
  Alcotest.(check bool) "intersecting" true (Quorum.all_intersecting s)

let test_tree_depth3_intersects () =
  let s = Tree_qs.make 3 in
  Alcotest.(check int) "universe" 15 (Quorum.universe s);
  Alcotest.(check int) "count" (Tree_qs.n_quorums 3) (Quorum.n_quorums s);
  Alcotest.(check bool) "intersecting" true (Quorum.all_intersecting s)

(* ------------------------------------------------------------------ *)
(* FPP                                                                 *)
(* ------------------------------------------------------------------ *)

let test_fpp_small_primes () =
  List.iter
    (fun q ->
      let s = Fpp_qs.make q in
      let n = (q * q) + q + 1 in
      Alcotest.(check int) "points" n (Quorum.universe s);
      Alcotest.(check int) "lines" n (Quorum.n_quorums s);
      Array.iter
        (fun line -> Alcotest.(check int) "line size" (q + 1) (Array.length line))
        (Quorum.quorums s);
      Alcotest.(check bool) "pairwise intersecting" true (Quorum.all_intersecting s);
      (* Any two lines meet in exactly one point. *)
      let qs = Quorum.quorums s in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          Alcotest.(check int) "exactly one common point" 1
            (Array.length (Quorum.intersection qs.(i) qs.(j)))
        done
      done)
    [ 2; 3; 5 ]

let test_fpp_balanced_load () =
  let q = 3 in
  let s = Fpp_qs.make q in
  let p = Strategy.uniform s in
  let loads = Strategy.loads s p in
  let expected = float_of_int (q + 1) /. float_of_int (Quorum.universe s) in
  Array.iter (fun l -> check_float "sqrt-n load" expected l) loads

let test_fpp_rejects () =
  Alcotest.check_raises "composite" (Invalid_argument "Fpp_qs.make: q must be prime")
    (fun () -> ignore (Fpp_qs.make 4));
  Alcotest.(check bool) "is_prime" true (Fpp_qs.is_prime 13);
  Alcotest.(check bool) "not prime" false (Fpp_qs.is_prime 15)

(* ------------------------------------------------------------------ *)
(* Walls                                                               *)
(* ------------------------------------------------------------------ *)

let test_walls () =
  let widths = [ 1; 2; 3 ] in
  Alcotest.(check int) "count" ((2 * 3) + 3 + 1) (Walls_qs.n_quorums widths);
  let s = Walls_qs.make widths in
  Alcotest.(check int) "universe" 6 (Quorum.universe s);
  Alcotest.(check int) "enumerated" 10 (Quorum.n_quorums s);
  Alcotest.(check bool) "intersecting" true (Quorum.all_intersecting s)

let test_walls_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Walls_qs: empty wall") (fun () ->
      ignore (Walls_qs.make []));
  Alcotest.check_raises "bad width" (Invalid_argument "Walls_qs: non-positive row width")
    (fun () -> ignore (Walls_qs.make [ 2; 0 ]))

(* ------------------------------------------------------------------ *)
(* Simple                                                              *)
(* ------------------------------------------------------------------ *)

let test_simple_systems () =
  let star = Simple_qs.star 5 in
  Alcotest.(check int) "star quorums" 4 (Quorum.n_quorums star);
  Alcotest.(check bool) "star intersects" true (Quorum.all_intersecting star);
  let wheel = Simple_qs.wheel 5 in
  Alcotest.(check int) "wheel quorums" 5 (Quorum.n_quorums wheel);
  Alcotest.(check bool) "wheel intersects" true (Quorum.all_intersecting wheel);
  Alcotest.(check bool) "wheel coterie" true (Quorum.is_coterie wheel);
  let single = Simple_qs.singleton 4 2 in
  Alcotest.(check int) "singleton" 1 (Quorum.n_quorums single)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_grid_intersecting =
  QCheck.Test.make ~name:"grid systems pairwise intersect" ~count:8
    QCheck.(int_range 1 6)
    (fun k -> Quorum.all_intersecting (Grid_qs.make k))

let prop_majority_intersecting =
  QCheck.Test.make ~name:"majority systems pairwise intersect" ~count:20
    QCheck.(int_range 1 9)
    (fun n ->
      let t = (n / 2) + 1 in
      Quorum.all_intersecting (Majority_qs.make ~n ~t))

let prop_walls_intersecting =
  QCheck.Test.make ~name:"crumbling walls pairwise intersect" ~count:20
    QCheck.(list_of_size (QCheck.Gen.int_range 1 4) (int_range 1 4))
    (fun widths -> widths = [] || Quorum.all_intersecting (Walls_qs.make widths))

let prop_loads_sum_rule =
  QCheck.Test.make ~name:"sum of loads = expected quorum size" ~count:20
    QCheck.(int_range 2 5)
    (fun k ->
      let s = Grid_qs.make k in
      let p = Strategy.uniform s in
      Float.abs (Strategy.total_load s p -. float_of_int ((2 * k) - 1)) < 1e-9)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_grid_intersecting; prop_majority_intersecting; prop_walls_intersecting;
      prop_loads_sum_rule;
    ]

let suites =
  [
    ( "quorum.core",
      [
        Alcotest.test_case "normalization" `Quick test_make_normalizes;
        Alcotest.test_case "validation" `Quick test_make_rejects;
        Alcotest.test_case "mem/intersection" `Quick test_mem_and_intersection;
        Alcotest.test_case "element quorums + degree" `Quick test_element_quorums_degree;
        Alcotest.test_case "coterie detection" `Quick test_coterie_detection;
      ] );
    ( "quorum.strategy",
      [
        Alcotest.test_case "uniform valid" `Quick test_strategy_uniform_valid;
        Alcotest.test_case "validation" `Quick test_strategy_validate_rejects;
        Alcotest.test_case "triangle loads" `Quick test_strategy_loads_triangle;
        Alcotest.test_case "loads = element_load" `Quick test_strategy_loads_match_element_load;
        Alcotest.test_case "weights + mix" `Quick test_strategy_of_weights_and_mix;
        Alcotest.test_case "sampling frequencies" `Quick test_strategy_sampling_frequencies;
      ] );
    ( "quorum.grid",
      [
        Alcotest.test_case "shape" `Quick test_grid_shape;
        Alcotest.test_case "contents" `Quick test_grid_quorum_contents;
        Alcotest.test_case "uniform load" `Quick test_grid_load;
        Alcotest.test_case "k = 1" `Quick test_grid_k1;
      ] );
    ( "quorum.majority",
      [
        Alcotest.test_case "shape" `Quick test_majority_shape;
        Alcotest.test_case "threshold check" `Quick test_majority_rejects_non_intersecting_threshold;
        Alcotest.test_case "uniform load t/n" `Quick test_majority_uniform_load;
        Alcotest.test_case "Eq.19 counting identity" `Quick test_majority_counting_identity;
        Alcotest.test_case "sampling" `Quick test_majority_sampling;
      ] );
    ( "quorum.tree",
      [
        Alcotest.test_case "counts + depth 2" `Quick test_tree_counts;
        Alcotest.test_case "depth 3 intersects" `Quick test_tree_depth3_intersects;
      ] );
    ( "quorum.fpp",
      [
        Alcotest.test_case "projective planes" `Quick test_fpp_small_primes;
        Alcotest.test_case "balanced load" `Quick test_fpp_balanced_load;
        Alcotest.test_case "primality" `Quick test_fpp_rejects;
      ] );
    ( "quorum.walls",
      [
        Alcotest.test_case "wall 1-2-3" `Quick test_walls;
        Alcotest.test_case "validation" `Quick test_walls_rejects;
      ] );
    ( "quorum.simple",
      [ Alcotest.test_case "star/wheel/singleton" `Quick test_simple_systems ] );
    ("quorum.properties", qcheck_tests);
  ]
