module Rng = Qp_util.Rng
module Generators = Qp_graph.Generators
module Strategy = Qp_quorum.Strategy
module Grid_qs = Qp_quorum.Grid_qs
open Qp_place

let fixture seed =
  let rng = Rng.create seed in
  let n = 10 in
  let g, _ = Generators.random_geometric rng n 0.5 in
  let system = Grid_qs.make 2 in
  Problem.of_graph_qpp ~graph:g
    ~capacities:(Array.make n (Grid_qs.element_load 2))
    ~system ~strategy:(Strategy.uniform system) ()

let test_dominates () =
  let mk delay load_violation =
    { Pareto.alpha = 2.; delay; load_violation; placement = [||] }
  in
  Alcotest.(check bool) "strictly better" true (Pareto.dominates (mk 1. 1.) (mk 2. 2.));
  Alcotest.(check bool) "better in one" true (Pareto.dominates (mk 1. 2.) (mk 2. 2.));
  Alcotest.(check bool) "equal does not dominate" false (Pareto.dominates (mk 1. 1.) (mk 1. 1.));
  Alcotest.(check bool) "incomparable" false (Pareto.dominates (mk 1. 3.) (mk 2. 2.))

let test_frontier_structure () =
  let p = fixture 3 in
  let pts = Pareto.frontier ~candidates:[ 0; 5 ] p in
  Alcotest.(check bool) "non-empty" true (pts <> []);
  (* Sorted by delay, anti-sorted by violation, pairwise non-dominated. *)
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "delay increasing" true (a.Pareto.delay <= b.Pareto.delay +. 1e-12);
        Alcotest.(check bool) "violation non-increasing" true
          (a.Pareto.load_violation +. 1e-12 >= b.Pareto.load_violation);
        check rest
    | _ -> ()
  in
  check pts;
  List.iter
    (fun a ->
      List.iter
        (fun b -> if a != b then Alcotest.(check bool) "non-dominated" false (Pareto.dominates a b))
        pts)
    pts;
  (* Every point's data is self-consistent. *)
  List.iter
    (fun pt ->
      Alcotest.(check (float 1e-9)) "delay consistent" pt.Pareto.delay
        (Delay.avg_max_delay p pt.Pareto.placement);
      Alcotest.(check (float 1e-9)) "violation consistent" pt.Pareto.load_violation
        (Placement.max_violation p pt.Pareto.placement))
    pts

let test_frontier_empty_when_infeasible () =
  let rng = Rng.create 4 in
  let g, _ = Generators.random_geometric rng 3 0.8 in
  let system = Grid_qs.make 2 in
  (* 3 nodes, 4 elements in the unit regime: infeasible. *)
  let p =
    Problem.of_graph_qpp ~graph:g
      ~capacities:(Array.make 3 (Grid_qs.element_load 2))
      ~system ~strategy:(Strategy.uniform system) ()
  in
  Alcotest.(check bool) "empty" true (Pareto.frontier ~candidates:[ 0 ] p = [])

let prop_frontier_nondominated =
  QCheck.Test.make ~name:"pareto frontier is an antichain" ~count:8 QCheck.small_int
    (fun seed ->
      let p = fixture (seed + 50) in
      let pts = Pareto.frontier ~alphas:[ 1.5; 2.; 4. ] ~candidates:[ 0; 3 ] p in
      List.for_all
        (fun a -> List.for_all (fun b -> a == b || not (Pareto.dominates a b)) pts)
        pts)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_frontier_nondominated ]

let suites =
  [
    ( "place.pareto",
      [
        Alcotest.test_case "dominance" `Quick test_dominates;
        Alcotest.test_case "frontier structure" `Quick test_frontier_structure;
        Alcotest.test_case "infeasible" `Quick test_frontier_empty_when_infeasible;
      ] );
    ("pareto.properties", qcheck_tests);
  ]
