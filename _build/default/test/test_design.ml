open Qp_design.Design
module Rng = Qp_util.Rng
module Metric = Qp_graph.Metric
module Generators = Qp_graph.Generators
module Quorum = Qp_quorum.Quorum

let check_float = Alcotest.(check (float 1e-9))

let random_metric seed n =
  let rng = Rng.create seed in
  Metric.of_graph (fst (Generators.random_geometric rng n 0.5))

(* ------------------------------------------------------------------ *)
(* Min-max design (Tsuchiya-style)                                     *)
(* ------------------------------------------------------------------ *)

let test_minmax_path () =
  (* Path 0-1-2-3-4: worst pair (0,4); midpoint 2 gives radius 2. *)
  let m = Metric.of_graph (Generators.path 5) in
  check_float "radius" 2. (minmax_optimal_radius m);
  let design = minmax_optimal_design m in
  check_float "achieved" 2. (eccentricity_of_design m design);
  Alcotest.(check bool) "valid system" true (Quorum.all_intersecting design)

let test_minmax_star () =
  (* Star: hub reaches everything at 1; balls B_1 all contain the hub. *)
  let m = Metric.of_graph (Generators.star 6) in
  check_float "radius 1" 1. (minmax_optimal_radius m);
  check_float "achieved" 1. (eccentricity_of_design m (minmax_optimal_design m))

let test_minmax_complete () =
  (* Radius 0 balls are singletons (disjoint); radius 1 balls are the
     whole vertex set, so the optimum is 1: for any pair (v, v') the
     best meeting point w = v costs max(0, 1) = 1. *)
  let m = Metric.of_graph (Generators.complete 5) in
  check_float "radius 1" 1. (minmax_optimal_radius m)

let test_minmax_is_lower_bound_for_other_designs () =
  (* Any concrete design over the vertices has eccentricity >= the
     optimal radius. *)
  for seed = 1 to 10 do
    let m = random_metric seed 7 in
    let r = minmax_optimal_radius m in
    let singleton = Quorum.make ~universe:7 [| [| seed mod 7 |] |] in
    Alcotest.(check bool) "singleton no better" true
      (eccentricity_of_design m singleton +. 1e-12 >= r);
    let majority = Qp_quorum.Majority_qs.make ~n:7 ~t:4 in
    Alcotest.(check bool) "majority no better" true
      (eccentricity_of_design m majority +. 1e-12 >= r)
  done

let prop_minmax_optimal =
  QCheck.Test.make ~name:"ball design achieves the optimal radius" ~count:30
    QCheck.small_int (fun seed ->
      let n = 4 + (seed mod 6) in
      let m = random_metric (seed + 100) n in
      let r = minmax_optimal_radius m in
      let design = minmax_optimal_design m in
      Float.abs (eccentricity_of_design m design -. r) < 1e-9
      && Quorum.all_intersecting design)

(* ------------------------------------------------------------------ *)
(* Min-avg design (Kobayashi / Lin)                                    *)
(* ------------------------------------------------------------------ *)

let test_lin_median_on_path () =
  let m = Metric.of_graph (Generators.path 5) in
  let median, design = lin_median_design m in
  Alcotest.(check int) "median is center" 2 median;
  check_float "cost = avg distance" (6. /. 5.) (mean_delay_of_design m design)

let test_lin_two_approx_chain () =
  (* median cost <= 2 LB <= 2 OPT, and OPT <= median cost. *)
  for seed = 1 to 10 do
    let m = random_metric (seed + 300) 4 in
    let _, design = lin_median_design m in
    let cost = mean_delay_of_design m design in
    let lb = minavg_lower_bound m in
    let opt = minavg_exhaustive m in
    Alcotest.(check bool) "cost <= 2 LB" true (cost <= (2. *. lb) +. 1e-9);
    Alcotest.(check bool) "LB <= OPT" true (lb <= opt +. 1e-9);
    Alcotest.(check bool) "OPT <= cost" true (opt <= cost +. 1e-9);
    Alcotest.(check bool) "2-approx" true (cost <= (2. *. opt) +. 1e-9)
  done

let test_minavg_exhaustive_guard () =
  let m = random_metric 1 5 in
  Alcotest.check_raises "guard" (Invalid_argument "Design.minavg_exhaustive: n <= 4 required")
    (fun () -> ignore (minavg_exhaustive m))

let test_design_universe_mismatch () =
  let m = random_metric 2 5 in
  let sys = Qp_quorum.Simple_qs.triangle () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Design: system universe must be the vertex set") (fun () ->
      ignore (mean_delay_of_design m sys))

let prop_lin_two_approx =
  QCheck.Test.make ~name:"Lin median design is a 2-approximation" ~count:40
    QCheck.small_int (fun seed ->
      let m = random_metric (seed + 500) 4 in
      let _, design = lin_median_design m in
      mean_delay_of_design m design <= (2. *. minavg_exhaustive m) +. 1e-9)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_minmax_optimal; prop_lin_two_approx ]

let suites =
  [
    ( "design.minmax",
      [
        Alcotest.test_case "path" `Quick test_minmax_path;
        Alcotest.test_case "star" `Quick test_minmax_star;
        Alcotest.test_case "complete" `Quick test_minmax_complete;
        Alcotest.test_case "lower bound" `Quick test_minmax_is_lower_bound_for_other_designs;
      ] );
    ( "design.minavg",
      [
        Alcotest.test_case "median on path" `Quick test_lin_median_on_path;
        Alcotest.test_case "2-approx chain" `Quick test_lin_two_approx_chain;
        Alcotest.test_case "exhaustive guard" `Quick test_minavg_exhaustive_guard;
        Alcotest.test_case "universe mismatch" `Quick test_design_universe_mismatch;
      ] );
    ("design.properties", qcheck_tests);
  ]
