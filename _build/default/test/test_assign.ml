open Qp_assign
module Rng = Qp_util.Rng

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* MCMF                                                                *)
(* ------------------------------------------------------------------ *)

let test_mcmf_simple_path () =
  let net = Mcmf.create 3 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:2 ~cost:1.;
  Mcmf.add_edge net ~src:1 ~dst:2 ~capacity:2 ~cost:1.;
  let flow, cost = Mcmf.min_cost_flow net ~source:0 ~sink:2 () in
  Alcotest.(check int) "flow" 2 flow;
  check_float "cost" 4. cost

let test_mcmf_chooses_cheap_path () =
  let net = Mcmf.create 4 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:1 ~cost:1.;
  Mcmf.add_edge net ~src:1 ~dst:3 ~capacity:1 ~cost:1.;
  Mcmf.add_edge net ~src:0 ~dst:2 ~capacity:1 ~cost:10.;
  Mcmf.add_edge net ~src:2 ~dst:3 ~capacity:1 ~cost:10.;
  let flow, cost = Mcmf.min_cost_flow net ~source:0 ~sink:3 ~max_flow:1 () in
  Alcotest.(check int) "flow" 1 flow;
  check_float "cheap path" 2. cost

let test_mcmf_max_flow_cap () =
  let net = Mcmf.create 2 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:10 ~cost:1.;
  let flow, _ = Mcmf.min_cost_flow net ~source:0 ~sink:1 ~max_flow:3 () in
  Alcotest.(check int) "respects cap" 3 flow

let test_mcmf_disconnected () =
  let net = Mcmf.create 3 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:1 ~cost:1.;
  let flow, cost = Mcmf.min_cost_flow net ~source:0 ~sink:2 () in
  Alcotest.(check int) "no flow" 0 flow;
  check_float "no cost" 0. cost

let test_mcmf_negative_costs () =
  (* Negative arc exercises the Bellman-Ford potential bootstrap. *)
  let net = Mcmf.create 3 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:1 ~cost:5.;
  Mcmf.add_edge net ~src:1 ~dst:2 ~capacity:1 ~cost:(-3.);
  let flow, cost = Mcmf.min_cost_flow net ~source:0 ~sink:2 () in
  Alcotest.(check int) "flow" 1 flow;
  check_float "net cost" 2. cost

let test_mcmf_assignment_instance () =
  (* 3x3 assignment with known optimum: costs rows
     [4 1 3; 2 0 5; 3 2 2] -> optimal = 1 + 2 + 2 = 5. *)
  let c = [| [| 4.; 1.; 3. |]; [| 2.; 0.; 5. |]; [| 3.; 2.; 2. |] |] in
  let net = Mcmf.create 8 in
  (* 0 source; 1-3 workers; 4-6 tasks; 7 sink. *)
  for w = 0 to 2 do
    Mcmf.add_edge net ~src:0 ~dst:(1 + w) ~capacity:1 ~cost:0.;
    Mcmf.add_edge net ~src:(4 + w) ~dst:7 ~capacity:1 ~cost:0.;
    for t = 0 to 2 do
      Mcmf.add_edge net ~src:(1 + w) ~dst:(4 + t) ~capacity:1 ~cost:c.(w).(t)
    done
  done;
  let flow, cost = Mcmf.min_cost_flow net ~source:0 ~sink:7 () in
  Alcotest.(check int) "perfect matching" 3 flow;
  check_float "optimal" 5. cost

let test_mcmf_flow_edges_conservation () =
  let net = Mcmf.create 5 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:2 ~cost:1.;
  Mcmf.add_edge net ~src:0 ~dst:2 ~capacity:2 ~cost:2.;
  Mcmf.add_edge net ~src:1 ~dst:3 ~capacity:1 ~cost:0.;
  Mcmf.add_edge net ~src:1 ~dst:4 ~capacity:5 ~cost:3.;
  Mcmf.add_edge net ~src:2 ~dst:4 ~capacity:2 ~cost:0.;
  Mcmf.add_edge net ~src:3 ~dst:4 ~capacity:5 ~cost:0.;
  let flow, _ = Mcmf.min_cost_flow net ~source:0 ~sink:4 () in
  Alcotest.(check int) "max flow" 4 flow;
  (* Conservation at internal nodes. *)
  let net_flow = Array.make 5 0 in
  List.iter
    (fun (s, d, f, _) ->
      net_flow.(s) <- net_flow.(s) - f;
      net_flow.(d) <- net_flow.(d) + f)
    (Mcmf.flow_on_edges net);
  Alcotest.(check int) "source out" (-4) net_flow.(0);
  Alcotest.(check int) "sink in" 4 net_flow.(4);
  Alcotest.(check int) "internal 1" 0 net_flow.(1);
  Alcotest.(check int) "internal 2" 0 net_flow.(2);
  Alcotest.(check int) "internal 3" 0 net_flow.(3)

let test_mcmf_validation () =
  let net = Mcmf.create 2 in
  Alcotest.check_raises "bad endpoint" (Invalid_argument "Mcmf.add_edge: endpoint out of range")
    (fun () -> Mcmf.add_edge net ~src:0 ~dst:5 ~capacity:1 ~cost:0.);
  Alcotest.check_raises "bad capacity" (Invalid_argument "Mcmf.add_edge: negative capacity")
    (fun () -> Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:(-1) ~cost:0.)

(* ------------------------------------------------------------------ *)
(* GAP                                                                 *)
(* ------------------------------------------------------------------ *)

let small_gap () =
  (* 2 machines, 3 jobs. *)
  Gap.make
    ~cost:[| [| 1.; 2.; 3. |]; [| 3.; 1.; 1. |] |]
    ~load:[| [| 1.; 1.; 1. |]; [| 1.; 1.; 1. |] |]
    ~budget:[| 2.; 2. |] ()

let test_gap_accessors () =
  let g = small_gap () in
  let a = [| 0; 1; 1 |] in
  check_float "cost" 3. (Gap.assignment_cost g a);
  Alcotest.(check (array (float 1e-9))) "loads" [| 1.; 2. |] (Gap.machine_loads g a);
  Alcotest.(check bool) "respects" true (Gap.respects g a);
  Alcotest.(check bool) "violates" false (Gap.respects g [| 0; 0; 0 |]);
  check_float "pmax" 1. (Gap.max_job_load g 0)

let test_gap_validation () =
  Alcotest.check_raises "shape" (Invalid_argument "Gap.make: bad shape for load") (fun () ->
      ignore
        (Gap.make ~cost:[| [| 1. |] |] ~load:[| [| 1.; 2. |] |] ~budget:[| 1. |] ()));
  Alcotest.check_raises "budget" (Invalid_argument "Gap.make: negative budget") (fun () ->
      ignore (Gap.make ~cost:[| [| 1. |] |] ~load:[| [| 1. |] |] ~budget:[| -1. |] ()))

let test_gap_lp_known () =
  let g = small_gap () in
  match Gap_lp.solve g with
  | None -> Alcotest.fail "feasible instance"
  | Some { Gap_lp.y; lp_cost } ->
      (* Integral optimum assigns j0->m0 (1), j1->m1 (1), j2->m1 (1) =
         3 and fits budgets, so the LP is exactly 3. *)
      check_float "lp cost" 3. lp_cost;
      for j = 0 to 2 do
        let s = y.(0).(j) +. y.(1).(j) in
        check_float "job fully assigned" 1. s
      done

let test_gap_lp_infeasible () =
  let g =
    Gap.make ~cost:[| [| 1.; 1. |] |] ~load:[| [| 1.; 1. |] |] ~budget:[| 1.5 |] ()
  in
  Alcotest.(check bool) "infeasible" true (Gap_lp.solve g = None)

let test_gap_lp_respects_forbidden () =
  let g =
    Gap.make
      ~cost:[| [| 0.; 0. |]; [| 5.; 5. |] |]
      ~load:[| [| 1.; 1. |]; [| 1.; 1. |] |]
      ~budget:[| 2.; 2. |]
      ~allowed:[| [| false; false |]; [| true; true |] |]
      ()
  in
  match Gap_lp.solve g with
  | None -> Alcotest.fail "feasible via machine 1"
  | Some { Gap_lp.y; lp_cost } ->
      check_float "forced expensive machine" 10. lp_cost;
      check_float "no forbidden mass" 0. (y.(0).(0) +. y.(0).(1))

let test_st_round_known () =
  let g = small_gap () in
  match Shmoys_tardos.solve g with
  | None -> Alcotest.fail "feasible"
  | Some r ->
      check_float "integral cost equals LP here" 3. r.Shmoys_tardos.cost;
      Alcotest.(check bool) "loads within T + pmax" true
        (Array.for_all2 (fun l b -> l <= b +. 1. +. 1e-9) r.Shmoys_tardos.loads
           [| 2.; 2. |])

let test_st_round_validates () =
  let g = small_gap () in
  Alcotest.check_raises "bad fractions"
    (Invalid_argument "Shmoys_tardos.round: job fractions do not sum to 1") (fun () ->
      ignore (Shmoys_tardos.round g [| [| 0.5; 0.; 0. |]; [| 0.; 0.; 0. |] |]))

(* Random GAP instances: guarantee checks. Budgets are set to the
   fractional loads of a random feasible assignment so the LP is
   always feasible. *)
let random_gap seed =
  let rng = Rng.create seed in
  let nm = 2 + Rng.int rng 4 in
  let nj = 2 + Rng.int rng 8 in
  let cost = Array.init nm (fun _ -> Array.init nj (fun _ -> Rng.float rng 10.)) in
  let load = Array.init nm (fun _ -> Array.init nj (fun _ -> 0.1 +. Rng.float rng 2.)) in
  (* Feasibility witness: each job on a random machine. *)
  let budget = Array.make nm 0. in
  for j = 0 to nj - 1 do
    let i = Rng.int rng nm in
    budget.(i) <- budget.(i) +. load.(i).(j)
  done;
  Gap.make ~cost ~load ~budget ()

let prop_st_guarantees =
  QCheck.Test.make ~name:"Shmoys-Tardos guarantees on random instances" ~count:60
    QCheck.small_int (fun seed ->
      let g = random_gap seed in
      match Gap_lp.solve g with
      | None -> false (* witness guarantees feasibility *)
      | Some { Gap_lp.y; _ } ->
          let r = Shmoys_tardos.round g y in
          Shmoys_tardos.check_guarantees g y r)

let prop_lp_cost_lower_bounds_integral =
  QCheck.Test.make ~name:"GAP LP lower-bounds any integral assignment" ~count:40
    QCheck.small_int (fun seed ->
      let g = random_gap (seed + 500) in
      match Gap_lp.solve g with
      | None -> false
      | Some { Gap_lp.lp_cost; _ } ->
          (* Enumerate a few random capacity-respecting assignments. *)
          let rng = Rng.create (seed * 31) in
          let ok = ref true in
          for _ = 1 to 20 do
            let a = Array.init g.Gap.n_jobs (fun _ -> Rng.int rng g.Gap.n_machines) in
            if Gap.respects g a && Gap.assignment_cost g a < lp_cost -. 1e-6 then
              ok := false
          done;
          !ok)

(* Unit loads: GAP = transportation; MCMF gives the exact integral
   optimum, and ST rounding must match it (cost <= LP <= OPT and
   integral feasible => equality). *)
let prop_unit_load_matches_mcmf =
  QCheck.Test.make ~name:"unit-load GAP: ST rounding = MCMF optimum" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 900) in
      let nm = 2 + Rng.int rng 3 in
      let nj = nm + Rng.int rng 3 in
      let cost = Array.init nm (fun _ -> Array.init nj (fun _ -> Rng.float rng 10.)) in
      let load = Array.init nm (fun _ -> Array.make nj 1.) in
      (* Capacities: ceil(nj/nm) + 1 per machine — always feasible. *)
      let capn = (nj / nm) + 2 in
      let budget = Array.make nm (float_of_int capn) in
      let g = Gap.make ~cost ~load ~budget () in
      (* Exact optimum via flow. *)
      let net = Mcmf.create (1 + nj + nm + 1) in
      let job_node j = 1 + j and machine_node i = 1 + nj + i in
      let sink = 1 + nj + nm in
      for j = 0 to nj - 1 do
        Mcmf.add_edge net ~src:0 ~dst:(job_node j) ~capacity:1 ~cost:0.;
        for i = 0 to nm - 1 do
          Mcmf.add_edge net ~src:(job_node j) ~dst:(machine_node i) ~capacity:1
            ~cost:cost.(i).(j)
        done
      done;
      for i = 0 to nm - 1 do
        Mcmf.add_edge net ~src:(machine_node i) ~dst:sink ~capacity:capn ~cost:0.
      done;
      let flow, opt = Mcmf.min_cost_flow net ~source:0 ~sink () in
      flow = nj
      &&
      match Shmoys_tardos.solve g with
      | None -> false
      | Some r ->
          (* Provable direction: rounded cost <= LP value <= integral
             optimum under the same budgets. *)
          r.Shmoys_tardos.cost <= opt +. 1e-6)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_st_guarantees; prop_lp_cost_lower_bounds_integral; prop_unit_load_matches_mcmf ]

let suites =
  [
    ( "assign.mcmf",
      [
        Alcotest.test_case "simple path" `Quick test_mcmf_simple_path;
        Alcotest.test_case "cheap path" `Quick test_mcmf_chooses_cheap_path;
        Alcotest.test_case "max-flow cap" `Quick test_mcmf_max_flow_cap;
        Alcotest.test_case "disconnected" `Quick test_mcmf_disconnected;
        Alcotest.test_case "negative costs" `Quick test_mcmf_negative_costs;
        Alcotest.test_case "assignment optimum" `Quick test_mcmf_assignment_instance;
        Alcotest.test_case "flow conservation" `Quick test_mcmf_flow_edges_conservation;
        Alcotest.test_case "validation" `Quick test_mcmf_validation;
      ] );
    ( "assign.gap",
      [
        Alcotest.test_case "accessors" `Quick test_gap_accessors;
        Alcotest.test_case "validation" `Quick test_gap_validation;
        Alcotest.test_case "LP known optimum" `Quick test_gap_lp_known;
        Alcotest.test_case "LP infeasible" `Quick test_gap_lp_infeasible;
        Alcotest.test_case "LP respects forbidden" `Quick test_gap_lp_respects_forbidden;
        Alcotest.test_case "ST round known" `Quick test_st_round_known;
        Alcotest.test_case "ST validates input" `Quick test_st_round_validates;
      ] );
    ("assign.properties", qcheck_tests);
  ]
