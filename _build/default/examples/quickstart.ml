(* Quickstart: place a 3x3 Grid quorum system on a random wide-area
   network and compare the paper's LP-rounding placement (Theorem 1.2)
   against baselines.

   Run with: dune exec examples/quickstart.exe *)

module Rng = Qp_util.Rng
module Table = Qp_util.Table
module Generators = Qp_graph.Generators
module Grid_qs = Qp_quorum.Grid_qs
module Strategy = Qp_quorum.Strategy
open Qp_place

let () =
  let rng = Rng.create 2025 in

  (* 1. A 16-node Waxman WAN; link latencies are Euclidean distances. *)
  let graph, _positions = Generators.waxman rng 16 () in
  Printf.printf "Network: %d nodes, %d links\n" (Qp_graph.Graph.n_vertices graph)
    (Qp_graph.Graph.n_edges graph);

  (* 2. The Grid quorum system on 9 logical elements with its
     load-optimal uniform access strategy. *)
  let k = 3 in
  let system = Grid_qs.make k in
  let strategy = Grid_qs.uniform_strategy system in
  Printf.printf "Quorum system: %dx%d grid, %d quorums of %d elements, load %.3f\n" k k
    (Qp_quorum.Quorum.n_quorums system)
    ((2 * k) - 1)
    (Grid_qs.element_load k);

  (* 3. Capacities: every node can absorb 1.5x one element's load. *)
  let capacities = Array.make 16 (1.5 *. Grid_qs.element_load k) in
  let problem = Problem.of_graph_qpp ~graph ~capacities ~system ~strategy () in

  (* 4. Solve with the paper's algorithm (Theorem 1.2, alpha = 2). *)
  let result =
    match Qpp_solver.solve ~alpha:2. problem with
    | Some r -> r
    | None -> failwith "instance infeasible"
  in

  (* 5. Baselines for comparison. *)
  let random_f =
    match Baselines.random rng problem with Some f -> f | None -> failwith "unlucky"
  in
  let greedy_f =
    match Baselines.greedy_closest problem result.Qpp_solver.v0 with
    | Some f -> f
    | None -> failwith "greedy failed"
  in
  let _, lin_f = Baselines.lin_single_node problem in

  let table =
    Table.create ~title:"Average max-delay (lower is better)"
      [ ("placement", Table.Left); ("avg max-delay", Table.Right); ("max load/cap", Table.Right) ]
  in
  let row name f =
    Table.add_rowf table "%s|%.4f|%.2f" name (Delay.avg_max_delay problem f)
      (Placement.max_violation problem f)
  in
  row "LP rounding (Thm 1.2)" result.Qpp_solver.placement;
  row "greedy closest" greedy_f;
  row "random feasible" random_f;
  row "all-on-one-node (Lin)" lin_f;
  Table.print table;

  Printf.printf "\nTheorem 1.2 guarantees: delay <= %.1fx optimal, load <= %.0fx capacity\n"
    result.Qpp_solver.approx_bound
    (result.Qpp_solver.alpha +. 1.);
  (match result.Qpp_solver.lower_bound with
  | Some lb -> Printf.printf "Certified lower bound on optimal delay: %.4f\n" lb
  | None -> ());

  (* 6. Validate the analytic delay with the discrete-event simulator. *)
  let sim_report =
    Qp_sim.Access_sim.run
      (Qp_sim.Access_sim.default_config ~problem ~placement:result.Qpp_solver.placement)
  in
  Printf.printf "\nSimulated mean access delay: %.4f (analytic %.4f, error %.2f%%)\n"
    sim_report.Qp_sim.Access_sim.mean_delay sim_report.Qp_sim.Access_sim.analytic_delay
    (100. *. sim_report.Qp_sim.Access_sim.relative_error)
