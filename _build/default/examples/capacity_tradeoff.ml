(* The load/delay tension of Section 1.1, made concrete.

   "One can achieve an excellent clustering by mapping all the
   universe elements to a single physical node, but this would create
   a huge load on that node!" — this example sweeps the rounding
   parameter alpha of Theorems 3.7/1.2 and separately sweeps a
   uniform capacity-slack factor, charting how much delay each unit of
   allowed overload buys.

   Run with: dune exec examples/capacity_tradeoff.exe *)

module Rng = Qp_util.Rng
module Table = Qp_util.Table
module Generators = Qp_graph.Generators
module Grid_qs = Qp_quorum.Grid_qs
module Strategy = Qp_quorum.Strategy
open Qp_place

let () =
  let rng = Rng.create 11 in
  let n = 14 in
  let graph, _ = Generators.random_geometric rng n 0.45 in
  let k = 3 in
  let system = Grid_qs.make k in
  let strategy = Grid_qs.uniform_strategy system in
  let load = Grid_qs.element_load k in
  let capacities = Array.make n load in
  let problem = Problem.of_graph_qpp ~graph ~capacities ~system ~strategy () in

  (* Sweep alpha: theory trades delay alpha/(alpha-1) against capacity
     blow-up alpha+1. *)
  let tbl =
    Table.create ~title:"alpha sweep (Theorem 1.2 on one instance)"
      [ ("alpha", Table.Right); ("delay bound", Table.Right); ("load bound", Table.Right);
        ("measured delay", Table.Right); ("measured load/cap", Table.Right) ]
  in
  List.iter
    (fun alpha ->
      match Qpp_solver.solve ~alpha problem with
      | None -> Table.add_rowf tbl "%.2f|-|-|infeasible|-" alpha
      | Some r ->
          Table.add_rowf tbl "%.2f|%.1fx|%.1fx|%.4f|%.2f" alpha
            (5. *. alpha /. (alpha -. 1.))
            (alpha +. 1.) r.Qpp_solver.objective r.Qpp_solver.load_violation)
    [ 1.25; 1.5; 2.; 3.; 4.; 6. ];
  Table.print tbl;

  (* Sweep capacity slack with alpha fixed: more headroom lets the
     solver cluster the quorums more tightly. *)
  print_newline ();
  let tbl2 =
    Table.create ~title:"capacity slack sweep (alpha = 2)"
      [ ("cap / element load", Table.Right); ("measured delay", Table.Right);
        ("nodes used", Table.Right) ]
  in
  List.iter
    (fun slack ->
      let capacities = Array.make n (slack *. load) in
      let problem = Problem.of_graph_qpp ~graph ~capacities ~system ~strategy () in
      match Qpp_solver.solve ~alpha:2. problem with
      | None -> Table.add_rowf tbl2 "%.1f|infeasible|-" slack
      | Some r ->
          Table.add_rowf tbl2 "%.1f|%.4f|%d" slack r.Qpp_solver.objective
            (List.length (Placement.used_nodes r.Qpp_solver.placement)))
    [ 1.0; 1.5; 2.; 3.; 5.; 9. ];
  Table.print tbl2;
  Printf.printf
    "\nAs capacities grow the placement collapses toward the Lin single-node\n\
     extreme: minimal delay, all load on few nodes - the tension of Section 1.1.\n"
