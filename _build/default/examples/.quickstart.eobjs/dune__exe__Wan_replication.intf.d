examples/wan_replication.mli:
