examples/mutual_exclusion.ml: Array Baselines Delay Printf Problem Qp_graph Qp_place Qp_quorum Qp_sim Qp_util Total_delay
