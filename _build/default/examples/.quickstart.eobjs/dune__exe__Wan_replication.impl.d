examples/wan_replication.ml: Array Baselines List Printf Problem Qp_graph Qp_place Qp_quorum Qp_sim Qp_util Qpp_solver
