examples/strategy_tuning.mli:
