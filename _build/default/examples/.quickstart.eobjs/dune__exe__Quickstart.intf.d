examples/quickstart.mli:
