examples/capacity_tradeoff.mli:
