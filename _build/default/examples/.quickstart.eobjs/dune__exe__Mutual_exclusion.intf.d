examples/mutual_exclusion.mli:
