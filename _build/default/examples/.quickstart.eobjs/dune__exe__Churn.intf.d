examples/churn.mli:
