examples/strategy_tuning.ml: Array Baselines Delay Float Placement Printf Problem Qp_graph Qp_place Qp_quorum Qp_sim Qp_util Qpp_solver Strategy_opt
