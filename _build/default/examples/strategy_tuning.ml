(* Two knobs, one objective: placement AND access strategy.

   The paper fixes the access strategy p and optimizes the placement f
   (Footnote 1 notes p comes from the load-balancing literature). Once
   f exists, p can be re-optimized for delay THROUGH f while still
   respecting capacities - a small LP (Strategy_opt). This example runs
   both knobs in alternation on a transit-stub WAN and shows the
   delay/load movement at each step, then validates in simulation.

   Run with: dune exec examples/strategy_tuning.exe *)

module Rng = Qp_util.Rng
module Table = Qp_util.Table
module Generators = Qp_graph.Generators
module Grid_qs = Qp_quorum.Grid_qs
module Strategy = Qp_quorum.Strategy
open Qp_place

let () =
  let rng = Rng.create 77 in
  (* Hierarchical WAN: 4 transit routers, 2 stubs each, 3 nodes per
     stub -> 28 nodes with strong locality. *)
  let graph = Generators.transit_stub rng ~transits:4 ~stubs_per_transit:2 ~stub_size:3 in
  let n = Qp_graph.Graph.n_vertices graph in
  Printf.printf "Transit-stub WAN: %d nodes, %d links\n" n (Qp_graph.Graph.n_edges graph);

  let system = Grid_qs.make 3 in
  let strategy = Grid_qs.uniform_strategy system in
  let load = Grid_qs.element_load 3 in
  let capacities = Array.make n (1.1 *. load) in
  let problem = Problem.of_graph_qpp ~graph ~capacities ~system ~strategy () in

  let tbl =
    Table.create ~title:"alternating the two knobs"
      [ ("step", Table.Left); ("avg max-delay", Table.Right); ("max load/cap", Table.Right) ]
  in

  (* Step 0: uniform strategy + greedy placement. *)
  let greedy =
    match Baselines.greedy_closest problem (Qp_graph.Graph_props.one_median
      (Qp_graph.Metric.of_graph graph)) with
    | Some f -> f
    | None -> failwith "greedy failed"
  in
  Table.add_rowf tbl "greedy placement, uniform p|%.4f|%.2f"
    (Delay.avg_max_delay problem greedy)
    (Placement.max_violation problem greedy);

  (* Step 1: Theorem 1.2 placement under the uniform strategy. *)
  let placed =
    match Qpp_solver.solve ~alpha:2. problem with
    | Some r -> r.Qpp_solver.placement
    | None -> failwith "infeasible"
  in
  Table.add_rowf tbl "Thm 1.2 placement, uniform p|%.4f|%.2f"
    (Delay.avg_max_delay problem placed)
    (Placement.max_violation problem placed);

  (* Step 2: re-optimize the strategy through that placement. The
     Theorem 1.2 placement may already use up to (alpha+1) x cap on a
     node, which can make the raw capacity rows infeasible for EVERY
     strategy; grant the LP the budget the placement actually uses
     ("make no node worse than it already is"). *)
  let achieved = Placement.node_loads problem placed in
  let relaxed_caps =
    Array.mapi (fun v c -> Float.max c achieved.(v)) problem.Problem.capacities
  in
  let relaxed_problem =
    Problem.make_qpp ~metric:problem.Problem.metric ~capacities:relaxed_caps
      ~system:problem.Problem.system ~strategy:problem.Problem.strategy ()
  in
  (match Strategy_opt.optimize relaxed_problem placed with
  | None ->
      Table.print tbl;
      print_endline "strategy LP infeasible (should not happen: uniform p fits)"
  | Some r ->
      let problem' =
        Problem.make_qpp
          ~metric:problem.Problem.metric
          ~capacities:relaxed_caps
          ~system:problem.Problem.system
          ~strategy:r.Strategy_opt.strategy ()
      in
      Table.add_rowf tbl "same placement, optimized p|%.4f|%.2f" r.Strategy_opt.delay
        (Placement.max_violation problem' placed);
      (* Step 3: re-place under the new strategy. *)
      (match Qpp_solver.solve ~alpha:2. problem' with
      | Some r2 ->
          Table.add_rowf tbl "re-placed under optimized p|%.4f|%.2f"
            r2.Qpp_solver.objective
            (Placement.max_violation problem' r2.Qpp_solver.placement);
          Table.print tbl;
          (* Validate the final configuration in the simulator. *)
          let report =
            Qp_sim.Access_sim.run
              (Qp_sim.Access_sim.default_config ~problem:problem'
                 ~placement:r2.Qpp_solver.placement)
          in
          Printf.printf
            "\nFinal configuration simulated: mean %.4f vs analytic %.4f (%.2f%% error)\n"
            report.Qp_sim.Access_sim.mean_delay report.Qp_sim.Access_sim.analytic_delay
            (100. *. report.Qp_sim.Access_sim.relative_error)
      | None ->
          Table.print tbl;
          print_endline "re-placement infeasible"));
  print_endline
    "\nNote how optimizing p skews accesses toward the well-placed quorums while\n\
     the capacity rows keep every node within its declared budget."
