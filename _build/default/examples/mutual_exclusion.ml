(* Maekawa-style distributed mutual exclusion.

   Maekawa's sqrt(n) algorithm has each requester contact every member
   of its quorum sequentially (request -> grant per member), so the
   relevant objective is the TOTAL delay of Section 5, and the right
   placement tool is Theorem 5.1 (GAP rounding, cost <= OPT with at
   most 2x capacity).

   We build the finite-projective-plane quorum system PG(2,3) — 13
   elements, 13 quorums of 4, optimal sqrt-load — and place it on a
   two-cluster network (a barbell), showing the total-delay placement
   concentrates lock managers centrally while respecting capacity.

   Run with: dune exec examples/mutual_exclusion.exe *)

module Rng = Qp_util.Rng
module Table = Qp_util.Table
module Generators = Qp_graph.Generators
module Fpp_qs = Qp_quorum.Fpp_qs
module Strategy = Qp_quorum.Strategy
open Qp_place

let () =
  let q = 3 in
  let system = Fpp_qs.make q in
  let universe = Qp_quorum.Quorum.universe system in
  let strategy = Strategy.uniform system in
  Printf.printf "Maekawa/FPP quorum system PG(2,%d): %d elements, quorums of size %d\n" q
    universe (q + 1);

  (* Two 10-node clusters joined by a long inter-cluster link. *)
  let n = 20 in
  let graph = Generators.barbell 10 in
  (* Make the bridge slow: rebuild with a stretched middle edge. *)
  let stretched = Qp_graph.Graph.create n in
  Qp_graph.Graph.iter_edges graph (fun u v len ->
      let len = if (u = 0 && v = 10) || (u = 10 && v = 0) then 6. else len in
      Qp_graph.Graph.add_edge stretched u v len);
  let element_load = float_of_int (q + 1) /. float_of_int universe in
  let capacities = Array.make n (1.2 *. element_load) in
  let problem =
    Problem.of_graph_qpp ~graph:stretched ~capacities ~system ~strategy ()
  in

  (* Theorem 5.1 total-delay placement. *)
  let r =
    match Total_delay.solve problem with
    | Some r -> r
    | None -> failwith "infeasible"
  in
  Printf.printf "Total-delay placement: Avg Gamma = %.4f (GAP LP lower bound %.4f)\n"
    r.Total_delay.cost r.Total_delay.lp_cost;
  Printf.printf "Max load/capacity = %.2f (Theorem 5.1 bound: 2)\n\n"
    r.Total_delay.load_violation;
  assert (r.Total_delay.load_violation <= 2. +. 1e-6);

  (* Compare against the exact uniform-load optimum and baselines. *)
  let exact =
    match Total_delay.exact_uniform problem with
    | Some (c, _) -> c
    | None -> nan
  in
  let rng = Rng.create 5 in
  let random_f =
    match Baselines.random rng problem with Some f -> f | None -> failwith "unlucky"
  in
  let tbl =
    Table.create ~title:"Average total delay per lock acquisition"
      [ ("placement", Table.Left); ("Avg Gamma", Table.Right) ]
  in
  Table.add_rowf tbl "Thm 5.1 GAP rounding|%.4f" r.Total_delay.cost;
  Table.add_rowf tbl "exact optimum (uniform loads)|%.4f" exact;
  Table.add_rowf tbl "random feasible|%.4f" (Delay.avg_total_delay problem random_f);
  Table.print tbl;

  (* Sequential-protocol simulation: request/grant round trips. *)
  let cfg = Qp_sim.Access_sim.default_config ~problem ~placement:r.Total_delay.placement in
  let sim =
    Qp_sim.Access_sim.run
      {
        cfg with
        Qp_sim.Access_sim.protocol = Qp_sim.Access_sim.Sequential;
        accesses_per_client = 500;
      }
  in
  Printf.printf
    "\nSimulated sequential access: mean %.4f vs analytic %.4f (error %.2f%%)\n"
    sim.Qp_sim.Access_sim.mean_delay sim.Qp_sim.Access_sim.analytic_delay
    (100. *. sim.Qp_sim.Access_sim.relative_error)
