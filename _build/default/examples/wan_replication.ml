(* Replicated data store on a heterogeneous WAN.

   The scenario from the paper's introduction: logical replicas
   (quorum elements) must be mapped onto physical machines with very
   different capacities — datacenter nodes absorb many quorum
   accesses, edge boxes barely one, PDAs none ("one does not want a
   PDA on the network to be using all its computing resources to serve
   quorum accesses"). We place a Majority system for writes and show
   how the Theorem 1.2 placement spreads replicas across nearby
   datacenter/edge nodes, then stress it in simulation with queueing.

   Run with: dune exec examples/wan_replication.exe *)

module Rng = Qp_util.Rng
module Table = Qp_util.Table
module Generators = Qp_graph.Generators
module Majority_qs = Qp_quorum.Majority_qs
module Strategy = Qp_quorum.Strategy
open Qp_place

type node_class = Datacenter | Edge | Pda

let () =
  let rng = Rng.create 7 in
  let n = 18 in
  let graph, _ = Generators.waxman rng n ~alpha:0.6 ~beta:0.5 () in

  (* Node classes: 4 datacenters, 8 edge nodes, 6 PDAs. *)
  let classes =
    Array.init n (fun v -> if v < 4 then Datacenter else if v < 12 then Edge else Pda)
  in
  let replicas = 7 in
  let t = 4 (* majority threshold *) in
  let system = Majority_qs.make ~n:replicas ~t in
  let strategy = Strategy.uniform system in
  let element_load = float_of_int t /. float_of_int replicas in
  let capacities =
    Array.map
      (function
        | Datacenter -> 1.3 *. element_load (* a bit more headroom than edge *)
        | Edge -> 1.05 *. element_load (* one replica, some headroom *)
        | Pda -> 0. (* must host nothing *))
      classes
  in
  let problem = Problem.of_graph_qpp ~graph ~capacities ~system ~strategy () in
  Printf.printf
    "WAN with %d nodes (4 DC / 8 edge / 6 PDA); Majority(%d of %d), element load %.3f\n\n"
    n t replicas element_load;

  let result =
    match Qpp_solver.solve ~alpha:2. problem with
    | Some r -> r
    | None -> failwith "infeasible: not enough capacity for the replicas"
  in
  let f = result.Qpp_solver.placement in

  (* Where did the replicas land? *)
  let class_name = function Datacenter -> "DC" | Edge -> "edge" | Pda -> "PDA" in
  let hosting = Table.create ~title:"Replica hosting"
      [ ("replica", Table.Right); ("node", Table.Right); ("class", Table.Left) ]
  in
  Array.iteri
    (fun u v -> Table.add_rowf hosting "%d|%d|%s" u v (class_name classes.(v)))
    f;
  Table.print hosting;
  Array.iteri
    (fun u v ->
      ignore u;
      assert (classes.(v) <> Pda) (* capacity 0 keeps PDAs replica-free *))
    f;
  Printf.printf "\nNo replica landed on a PDA (their capacity is 0).\n";
  Printf.printf "Avg max-delay %.4f; max load/capacity %.2f (bound %.0f)\n\n"
    result.Qpp_solver.objective result.Qpp_solver.load_violation
    (result.Qpp_solver.alpha +. 1.);

  (* Stress test: writes arrive fast; service takes real time. The
     capacity-aware placement keeps queueing bounded because no node
     hosts more replicas than it can serve. *)
  let simulate placement label =
    let cfg = Qp_sim.Access_sim.default_config ~problem ~placement in
    let report =
      Qp_sim.Access_sim.run
        {
          cfg with
          Qp_sim.Access_sim.round_trip = true;
          service = Qp_sim.Access_sim.Exponential 0.02;
          arrival_rate = 0.8;
          accesses_per_client = 400;
          jitter = 0.1;
        }
    in
    (label, report)
  in
  (* Baseline that ignores capacities: everything on the "best" node. *)
  let _, lin_f = Baselines.lin_single_node problem in
  let rows = [ simulate f "Thm 1.2 placement"; simulate lin_f "all-on-one-node" ] in
  let tbl =
    Table.create ~title:"Simulated write latency under load (round-trip, queueing)"
      [ ("placement", Table.Left); ("mean", Table.Right); ("p95", Table.Right);
        ("max", Table.Right) ]
  in
  List.iter
    (fun (label, r) ->
      let s = r.Qp_sim.Access_sim.delay_summary in
      Table.add_rowf tbl "%s|%.4f|%.4f|%.4f" label s.Qp_util.Stats.mean s.Qp_util.Stats.p95
        s.Qp_util.Stats.max)
    rows;
  Table.print tbl;
  print_newline ()
