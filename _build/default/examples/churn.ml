(* Operating a placed quorum system through node churn.

   Day-2 operations: a deployed placement faces a node loss. This
   example (1) measures availability before the repair with the
   fault-injection simulator, (2) patches the placement minimally
   (Repair), (3) compares against a full re-solve, and (4) re-checks
   availability after the patch.

   Run with: dune exec examples/churn.exe *)

module Rng = Qp_util.Rng
module Table = Qp_util.Table
module Generators = Qp_graph.Generators
module Majority_qs = Qp_quorum.Majority_qs
module Strategy = Qp_quorum.Strategy
open Qp_place

let availability problem placement =
  let cfg =
    Qp_sim.Fault_sim.default_config ~problem ~placement
      ~failure_model:(Qp_sim.Fault_sim.Static 0.1)
  in
  (Qp_sim.Fault_sim.run { cfg with Qp_sim.Fault_sim.accesses_per_client = 600 })
    .Qp_sim.Fault_sim.availability

let () =
  let rng = Rng.create 99 in
  let n = 14 in
  let graph, _ = Generators.waxman rng n () in
  let system = Majority_qs.make ~n:5 ~t:3 in
  let strategy = Strategy.uniform system in
  let load = 3. /. 5. in
  let problem =
    Problem.of_graph_qpp ~graph ~capacities:(Array.make n (1.5 *. load)) ~system
      ~strategy ()
  in
  let solved =
    match Qpp_solver.solve ~alpha:2. problem with
    | Some r -> r
    | None -> failwith "infeasible"
  in
  let f = solved.Qpp_solver.placement in
  Printf.printf "Deployed: majority 3-of-5 on a %d-node WAN, delay %.4f\n" n
    solved.Qpp_solver.objective;
  Printf.printf "Availability under 10%% node failures (3 retries): %.4f\n\n"
    (availability problem f);

  (* The busiest host dies. *)
  let loads = Placement.node_loads problem f in
  let dead = ref 0 in
  Array.iteri (fun v l -> if l > loads.(!dead) then dead := v) loads;
  Printf.printf "Node %d (the busiest host) leaves the network.\n\n" !dead;

  match Repair.repair problem f ~dead:[ !dead ] with
  | None -> print_endline "no surviving capacity - operator must add nodes"
  | Some r ->
      let tbl =
        Table.create
          [ ("configuration", Table.Left); ("avg max-delay", Table.Right);
            ("replicas moved", Table.Right) ]
      in
      Table.add_rowf tbl "before churn|%.4f|-" r.Repair.delay_before;
      Table.add_rowf tbl "after greedy repair|%.4f|%d" r.Repair.delay_after
        (List.length r.Repair.moved);
      (match Repair.degradation_vs_resolve problem f ~dead:[ !dead ] with
      | Some (_, resolved) ->
          Table.add_rowf tbl "full re-solve (moves anything)|%.4f|up to %d" resolved
            (Problem.n_elements problem)
      | None -> ());
      Table.print tbl;
      (* Availability after the patch, on the survivors-only problem. *)
      let caps' = Array.copy problem.Problem.capacities in
      caps'.(!dead) <- 0.;
      let rates = Array.make n 1. in
      rates.(!dead) <- 0.;
      let problem' =
        Problem.make_qpp ~metric:problem.Problem.metric ~capacities:caps'
          ~system ~strategy ~client_rates:rates ()
      in
      Printf.printf "\nAvailability after repair: %.4f (replicas again fully placed)\n"
        (availability problem' r.Repair.placement)
