bench/main.ml: Array Experiments List Micro Sys
