bench/main.mli:
