(* Benchmark & experiment driver.

   Usage:
     dune exec bench/main.exe             # all experiments (E1-E9, F1-F2)
     dune exec bench/main.exe -- e5 f1    # selected experiments
     dune exec bench/main.exe -- micro    # bechamel microbenchmarks
     dune exec bench/main.exe -- all micro *)

let () =
  print_endline "Quorum Placement in Networks to Minimize Access Delays (PODC'05)";
  print_endline "Experiment reproduction suite - see DESIGN.md / EXPERIMENTS.md";
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] -> Experiments.all ()
  | args ->
      List.iter
        (function
          | "all" -> Experiments.all ()
          | "micro" -> Micro.run ()
          | name -> Experiments.by_name name)
        args
