lib/design/design.ml: Array Float List Qp_graph Qp_quorum
