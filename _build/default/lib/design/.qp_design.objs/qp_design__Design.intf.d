lib/design/design.mli: Qp_graph Qp_quorum
