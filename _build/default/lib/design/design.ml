module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum

let delta metric v q =
  Array.fold_left (fun acc u -> Float.max acc (Metric.dist metric v u)) 0. q

let closest_quorum_delay metric system v =
  Array.fold_left
    (fun acc q -> Float.min acc (delta metric v q))
    infinity (Quorum.quorums system)

let eccentricity_of_design metric system =
  if Quorum.universe system <> Metric.size metric then
    invalid_arg "Design: system universe must be the vertex set";
  let worst = ref 0. in
  for v = 0 to Metric.size metric - 1 do
    worst := Float.max !worst (closest_quorum_delay metric system v)
  done;
  !worst

let mean_delay_of_design metric system =
  if Quorum.universe system <> Metric.size metric then
    invalid_arg "Design: system universe must be the vertex set";
  let n = Metric.size metric in
  let acc = ref 0. in
  for v = 0 to n - 1 do
    acc := !acc +. closest_quorum_delay metric system v
  done;
  !acc /. float_of_int n

(* Balls B_r(v) pairwise intersect iff for every pair (v, v') some
   node w has max(d(v,w), d(v',w)) <= r; the smallest such r over the
   worst pair is the min-max optimum. *)
let minmax_optimal_radius metric =
  let n = Metric.size metric in
  let worst = ref 0. in
  for v = 0 to n - 1 do
    for v' = v + 1 to n - 1 do
      let best_meeting = ref infinity in
      for w = 0 to n - 1 do
        let need = Float.max (Metric.dist metric v w) (Metric.dist metric v' w) in
        if need < !best_meeting then best_meeting := need
      done;
      if !best_meeting > !worst then worst := !best_meeting
    done
  done;
  !worst

let minmax_optimal_design metric =
  let n = Metric.size metric in
  let r = minmax_optimal_radius metric in
  let ball v =
    let members = ref [] in
    for w = n - 1 downto 0 do
      if Metric.dist metric v w <= r +. 1e-12 then members := w :: !members
    done;
    Array.of_list !members
  in
  Quorum.make ~universe:n (Array.init n ball)

let one_median metric =
  let n = Metric.size metric in
  let best = ref 0 and best_cost = ref infinity in
  for m = 0 to n - 1 do
    let c = Metric.average_distance metric m in
    if c < !best_cost then begin
      best_cost := c;
      best := m
    end
  done;
  !best

let lin_median_design metric =
  let m = one_median metric in
  (m, Quorum.make ~universe:(Metric.size metric) [| [| m |] |])

let minavg_lower_bound metric =
  let n = Metric.size metric in
  let acc = ref 0. in
  for v = 0 to n - 1 do
    for v' = 0 to n - 1 do
      acc := !acc +. Metric.dist metric v v'
    done
  done;
  !acc /. float_of_int (n * n) /. 2.

let minavg_exhaustive metric =
  let n = Metric.size metric in
  if n > 4 then invalid_arg "Design.minavg_exhaustive: n <= 4 required";
  let n_subsets = (1 lsl n) - 1 in
  (* subset masks 1..n_subsets; precompute pairwise intersection and
     per-client delta for each subset. *)
  let deltas = Array.make_matrix (n_subsets + 1) n 0. in
  for mask = 1 to n_subsets do
    for v = 0 to n - 1 do
      let d = ref 0. in
      for u = 0 to n - 1 do
        if mask land (1 lsl u) <> 0 then d := Float.max !d (Metric.dist metric v u)
      done;
      deltas.(mask).(v) <- !d
    done
  done;
  let best = ref infinity in
  (* A family is a set of subset-masks; encode as a bitmask over
     1..n_subsets. Intersecting check: all pairs overlap. *)
  for family = 1 to (1 lsl n_subsets) - 1 do
    let members = ref [] in
    for s = 1 to n_subsets do
      if family land (1 lsl (s - 1)) <> 0 then members := s :: !members
    done;
    let intersecting =
      let rec pairs = function
        | [] -> true
        | s :: rest -> List.for_all (fun s' -> s land s' <> 0) rest && pairs rest
      in
      pairs !members
    in
    if intersecting then begin
      let total = ref 0. in
      for v = 0 to n - 1 do
        total :=
          !total +. List.fold_left (fun acc s -> Float.min acc deltas.(s).(v)) infinity !members
      done;
      let avg = !total /. float_of_int n in
      if avg < !best then best := avg
    end
  done;
  !best
