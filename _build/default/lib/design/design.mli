(** Quorum DESIGN problems from the paper's Related Work (Section 2).

    These predate the paper's placement formulation: instead of
    placing a given system, they design a quorum system Q over the
    graph's own vertex set to minimize how far clients are from their
    closest quorum. Load is deliberately ignored — the paper's
    critique — and the functions here exist to reproduce that
    critique quantitatively (experiment E12).

    Objectives (distances in the graph metric,
    [delta(v, Q) = max_{u in Q} d(v, u)]):

    - min-max   [Tsuchiya et al. 99]:  minimize
      [max_v min_{Q in family} delta(v, Q)];
    - min-avg   [Kobayashi et al. 01, NP-hard per Lin 01]:  minimize
      [Avg_v min_{Q in family} delta(v, Q)]. *)

val eccentricity_of_design : Qp_graph.Metric.t -> Qp_quorum.Quorum.system -> float
(** [max_v min_Q delta(v, Q)] for a system over universe = vertices. *)

val mean_delay_of_design : Qp_graph.Metric.t -> Qp_quorum.Quorum.system -> float
(** [Avg_v min_Q delta(v, Q)]. *)

val minmax_optimal_radius : Qp_graph.Metric.t -> float
(** The exact optimum of the min-max objective. A system achieving
    radius [r] exists iff all closed balls [B_r(v)] pairwise
    intersect (take the balls themselves as quorums), so the optimum
    is the smallest pairwise-intersection radius — computable in
    O(n^3) over the distinct distance values. *)

val minmax_optimal_design : Qp_graph.Metric.t -> Qp_quorum.Quorum.system
(** The ball family realizing {!minmax_optimal_radius}. *)

val lin_median_design : Qp_graph.Metric.t -> int * Qp_quorum.Quorum.system
(** Lin's 2-approximation for the (NP-hard) min-avg objective: the
    single singleton quorum at the 1-median. Returns the median and
    the system. Guarantee: its mean delay is at most twice the
    optimal mean delay of ANY quorum system (see [lin_certificate]).
    This is the solution the paper criticizes: system load 1, no
    dispersion. *)

val minavg_lower_bound : Qp_graph.Metric.t -> float
(** A certified lower bound on the min-avg optimum:
    for any system, quorums of two clients intersect, so
    [d(v, v') <= delta_v + delta_{v'}]; averaging over pairs gives
    [OPT >= (1/2) * min_v0 Avg_v d(v, v0) ... ] — concretely
    [Avg_{v,v'} d(v,v') / 2]. *)

val minavg_exhaustive : Qp_graph.Metric.t -> float
(** TRUE min-avg optimum, by enumerating every non-empty family of
    pairwise-intersecting non-empty subsets of the vertex set
    ([2^(2^n - 1)] candidates). Guarded to [n <= 4]. Oracle for the
    approximation tests. *)
