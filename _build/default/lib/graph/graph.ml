type t = {
  n : int;
  adj : (int * float) list array;
  mutable m : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.make (Stdlib.max n 1) []; m = 0 }

let n_vertices g = g.n

let n_edges g = g.m

let check_vertex g v name =
  if v < 0 || v >= g.n then invalid_arg ("Graph." ^ name ^ ": vertex out of range")

let edge_length g u v =
  check_vertex g u "edge_length";
  check_vertex g v "edge_length";
  List.assoc_opt v g.adj.(u)

let add_edge g u v len =
  check_vertex g u "add_edge";
  check_vertex g v "add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if len <= 0. then invalid_arg "Graph.add_edge: non-positive length";
  match edge_length g u v with
  | None ->
      g.adj.(u) <- (v, len) :: g.adj.(u);
      g.adj.(v) <- (u, len) :: g.adj.(v);
      g.m <- g.m + 1
  | Some old ->
      if len < old then begin
        let replace w lst = List.map (fun (x, l) -> if x = w then (x, len) else (x, l)) lst in
        g.adj.(u) <- replace v g.adj.(u);
        g.adj.(v) <- replace u g.adj.(v)
      end

let neighbors g v =
  check_vertex g v "neighbors";
  g.adj.(v)

let iter_neighbors g v f =
  check_vertex g v "iter_neighbors";
  List.iter (fun (w, len) -> f w len) g.adj.(v)

let iter_edges g f =
  for u = 0 to g.n - 1 do
    List.iter (fun (v, len) -> if u < v then f u v len) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v len -> acc := (u, v, len) :: !acc);
  List.rev !acc

let degree g v =
  check_vertex g v "degree";
  List.length g.adj.(v)

let is_connected g =
  if g.n = 0 then true
  else begin
    let seen = Array.make g.n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let count = ref 1 in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest ->
          stack := rest;
          List.iter
            (fun (w, _) ->
              if not seen.(w) then begin
                seen.(w) <- true;
                incr count;
                stack := w :: !stack
              end)
            g.adj.(v)
    done;
    !count = g.n
  end

let copy g = { n = g.n; adj = Array.copy g.adj; m = g.m }

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v, len) -> add_edge g u v len) es;
  g

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d)" g.n g.m
