module Rng = Qp_util.Rng

let path n =
  if n < 1 then invalid_arg "Generators.path: n >= 1 required";
  let g = Graph.create n in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1) 1.
  done;
  g

let weighted_path lens =
  let n = Array.length lens + 1 in
  let g = Graph.create n in
  Array.iteri (fun i len -> Graph.add_edge g i (i + 1) len) lens;
  g

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: n >= 3 required";
  let g = path n in
  Graph.add_edge g (n - 1) 0 1.;
  g

let star n =
  if n < 1 then invalid_arg "Generators.star: n >= 1 required";
  let g = Graph.create n in
  for i = 1 to n - 1 do
    Graph.add_edge g 0 i 1.
  done;
  g

let complete n =
  if n < 1 then invalid_arg "Generators.complete: n >= 1 required";
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Graph.add_edge g i j 1.
    done
  done;
  g

let grid2d rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid2d: dimensions >= 1 required";
  let g = Graph.create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.add_edge g (id r c) (id r (c + 1)) 1.;
      if r + 1 < rows then Graph.add_edge g (id r c) (id (r + 1) c) 1.
    done
  done;
  g

let torus2d rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Generators.torus2d: dimensions >= 3 required";
  let g = grid2d rows cols in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    Graph.add_edge g (id r 0) (id r (cols - 1)) 1.
  done;
  for c = 0 to cols - 1 do
    Graph.add_edge g (id 0 c) (id (rows - 1) c) 1.
  done;
  g

let random_tree rng n =
  if n < 1 then invalid_arg "Generators.random_tree: n >= 1 required";
  let g = Graph.create n in
  for v = 1 to n - 1 do
    let parent = Rng.int rng v in
    let len = 0.5 +. Rng.float rng 1.0 in
    Graph.add_edge g v parent len
  done;
  g

let erdos_renyi rng n p =
  if n < 1 then invalid_arg "Generators.erdos_renyi: n >= 1 required";
  if p < 0. || p > 1. then invalid_arg "Generators.erdos_renyi: p out of range";
  let g = Graph.create n in
  (* Random spanning-tree skeleton for connectivity. *)
  let perm = Rng.permutation rng n in
  for i = 1 to n - 1 do
    let j = Rng.int rng i in
    Graph.add_edge g perm.(i) perm.(j) 1.
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.uniform rng < p then Graph.add_edge g i j 1.
    done
  done;
  g

let euclid (x1, y1) (x2, y2) =
  let dx = x1 -. x2 and dy = y1 -. y2 in
  sqrt ((dx *. dx) +. (dy *. dy))

let random_points rng n = Array.init n (fun _ ->
    let x = Rng.uniform rng in
    let y = Rng.uniform rng in
    (x, y))

(* Complete-graph MST over point distances, used to stitch geometric
   graphs into one component without distorting the metric (MST edges
   have true Euclidean lengths). *)
let add_euclidean_mst g pts =
  let n = Array.length pts in
  let aux = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = euclid pts.(i) pts.(j) in
      if d > 0. then Graph.add_edge aux i j d
    done
  done;
  List.iter (fun (u, v, len) -> Graph.add_edge g u v len) (Mst.kruskal aux)

let random_geometric rng n radius =
  if n < 1 then invalid_arg "Generators.random_geometric: n >= 1 required";
  if radius <= 0. then invalid_arg "Generators.random_geometric: radius must be positive";
  let pts = random_points rng n in
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = euclid pts.(i) pts.(j) in
      if d > 0. && d <= radius then Graph.add_edge g i j d
    done
  done;
  if not (Graph.is_connected g) then add_euclidean_mst g pts;
  (g, pts)

let waxman rng n ?(alpha = 0.4) ?(beta = 0.4) () =
  if n < 1 then invalid_arg "Generators.waxman: n >= 1 required";
  let pts = random_points rng n in
  let l = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = euclid pts.(i) pts.(j) in
      if d > !l then l := d
    done
  done;
  let l = if !l = 0. then 1. else !l in
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = euclid pts.(i) pts.(j) in
      if d > 0. && Rng.uniform rng < beta *. exp (-.d /. (alpha *. l)) then
        Graph.add_edge g i j d
    done
  done;
  if not (Graph.is_connected g) then add_euclidean_mst g pts;
  (g, pts)

let transit_stub rng ~transits ~stubs_per_transit ~stub_size =
  if transits < 3 then invalid_arg "Generators.transit_stub: transits >= 3 required";
  if stubs_per_transit < 1 || stub_size < 1 then
    invalid_arg "Generators.transit_stub: positive stub parameters required";
  let per_transit = 1 + (stubs_per_transit * stub_size) in
  let n = transits * per_transit in
  let g = Graph.create n in
  let transit t = t * per_transit in
  (* Transit backbone: a cycle with a couple of chords. *)
  for t = 0 to transits - 1 do
    Graph.add_edge g (transit t) (transit ((t + 1) mod transits)) 1.0
  done;
  if transits > 3 then Graph.add_edge g (transit 0) (transit (transits / 2)) 1.0;
  for t = 0 to transits - 1 do
    for s = 0 to stubs_per_transit - 1 do
      let base = transit t + 1 + (s * stub_size) in
      (* Uplink from the first stub node, then a short local path plus
         random local chords. *)
      Graph.add_edge g base (transit t) 0.5;
      for i = 0 to stub_size - 2 do
        Graph.add_edge g (base + i) (base + i + 1) 0.1
      done;
      for i = 0 to stub_size - 1 do
        for j = i + 2 to stub_size - 1 do
          if Rng.uniform rng < 0.3 then Graph.add_edge g (base + i) (base + j) 0.1
        done
      done
    done
  done;
  g

let integrality_gap_graph k =
  if k < 2 then invalid_arg "Generators.integrality_gap_graph: k >= 2 required";
  let n = k * k in
  let g = Graph.create n in
  (* v0 = 0; spokes 1 .. n-k at distance 1. *)
  for v = 1 to n - k do
    Graph.add_edge g 0 v 1.
  done;
  (* A path continuing from spoke (n-k): distances 2 .. k. *)
  for i = 0 to k - 2 do
    Graph.add_edge g (n - k + i) (n - k + i + 1) 1.
  done;
  g

let barbell k =
  if k < 1 then invalid_arg "Generators.barbell: k >= 1 required";
  let g = Graph.create (2 * k) in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      Graph.add_edge g i j 1.;
      Graph.add_edge g (k + i) (k + j) 1.
    done
  done;
  Graph.add_edge g 0 k 1.;
  g

let caterpillar rng n =
  if n < 1 then invalid_arg "Generators.caterpillar: n >= 1 required";
  let spine = Stdlib.max 1 (n / 2) in
  let g = Graph.create n in
  for i = 0 to spine - 2 do
    Graph.add_edge g i (i + 1) 1.
  done;
  for v = spine to n - 1 do
    Graph.add_edge g v (Rng.int rng spine) 1.
  done;
  g
