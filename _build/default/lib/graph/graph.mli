(** Undirected graphs with positive edge lengths.

    Vertices are dense ints [0..n-1]. Parallel edges are collapsed to
    the shortest length; self-loops are rejected. The representation is
    an adjacency list tuned for Dijkstra scans. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices.
    Requires [n >= 0]. *)

val n_vertices : t -> int
val n_edges : t -> int

val add_edge : t -> int -> int -> float -> unit
(** [add_edge g u v len] inserts the undirected edge [{u,v}] with
    positive length [len]. If the edge exists, its length becomes
    [min existing len]. @raise Invalid_argument on self-loops,
    out-of-range endpoints, or non-positive lengths. *)

val edge_length : t -> int -> int -> float option
val neighbors : t -> int -> (int * float) list
(** Neighbor list of a vertex with edge lengths. *)

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
val iter_edges : t -> (int -> int -> float -> unit) -> unit
(** Each undirected edge visited once, with [u < v]. *)

val edges : t -> (int * int * float) list
val degree : t -> int -> int
val is_connected : t -> bool
val copy : t -> t

val of_edges : int -> (int * int * float) list -> t
(** [of_edges n es] builds a graph on [n] vertices from an edge list. *)

val pp : Format.formatter -> t -> unit
