let of_graph ?label ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph G {\n  node [shape=circle];\n";
  let name v = match label with Some f -> f v | None -> string_of_int v in
  for v = 0 to Graph.n_vertices g - 1 do
    let extra = if List.mem v highlight then ", style=filled, fillcolor=lightblue" else "" in
    Buffer.add_string buf
      (Printf.sprintf "  %d [label=\"%s\"%s];\n" v (name v) extra)
  done;
  Graph.iter_edges g (fun u v len ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d [label=\"%.2f\"];\n" u v len));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file path dot =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc dot)
