type 'a t = {
  mutable keys : float array;
  mutable vals : 'a option array;
  mutable len : int;
}

let create () = { keys = Array.make 16 0.; vals = Array.make 16 None; len = 0 }

let is_empty t = t.len = 0

let size t = t.len

let grow t =
  let cap = Array.length t.keys in
  let keys = Array.make (2 * cap) 0. in
  let vals = Array.make (2 * cap) None in
  Array.blit t.keys 0 keys 0 t.len;
  Array.blit t.vals 0 vals 0 t.len;
  t.keys <- keys;
  t.vals <- vals

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(i) < t.keys.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.keys.(l) < t.keys.(!smallest) then smallest := l;
  if r < t.len && t.keys.(r) < t.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key v =
  if t.len = Array.length t.keys then grow t;
  t.keys.(t.len) <- key;
  t.vals.(t.len) <- Some v;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek_min t =
  if t.len = 0 then None
  else
    match t.vals.(0) with
    | Some v -> Some (t.keys.(0), v)
    | None -> assert false

let pop_min t =
  if t.len = 0 then None
  else begin
    let result =
      match t.vals.(0) with Some v -> Some (t.keys.(0), v) | None -> assert false
    in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.keys.(0) <- t.keys.(t.len);
      t.vals.(0) <- t.vals.(t.len)
    end;
    t.vals.(t.len) <- None;
    sift_down t 0;
    result
  end

let clear t =
  Array.fill t.vals 0 t.len None;
  t.len <- 0
