(** Minimum spanning tree / forest (Kruskal).

    Used by the Waxman generator to guarantee connectivity and by
    tests. *)

val kruskal : Graph.t -> (int * int * float) list
(** Edges of a minimum spanning forest. *)

val total_weight : (int * int * float) list -> float
