(** Graphviz DOT export, for inspecting generated topologies and
    placements. *)

val of_graph : ?label:(int -> string) -> ?highlight:int list -> Graph.t -> string
(** Renders an undirected graph. [label] overrides vertex labels;
    [highlight] vertices are filled. *)

val to_file : string -> string -> unit
(** [to_file path dot] writes the DOT source to a file. *)
