lib/graph/heap.mli:
