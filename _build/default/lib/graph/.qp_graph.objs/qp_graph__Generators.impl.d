lib/graph/generators.ml: Array Graph List Mst Qp_util Stdlib
