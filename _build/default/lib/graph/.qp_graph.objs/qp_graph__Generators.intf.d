lib/graph/generators.mli: Graph Qp_util
