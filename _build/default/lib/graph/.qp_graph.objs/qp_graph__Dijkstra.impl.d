lib/graph/dijkstra.ml: Array Graph Heap
