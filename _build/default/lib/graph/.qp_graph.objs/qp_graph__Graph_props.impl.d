lib/graph/graph_props.ml: Array Float Metric
