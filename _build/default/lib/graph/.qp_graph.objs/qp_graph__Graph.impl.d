lib/graph/graph.ml: Array Format List Stdlib
