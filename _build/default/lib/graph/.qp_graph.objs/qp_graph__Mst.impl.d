lib/graph/mst.ml: Graph List Union_find
