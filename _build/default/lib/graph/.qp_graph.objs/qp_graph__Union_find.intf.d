lib/graph/union_find.mli:
