lib/graph/heap.ml: Array
