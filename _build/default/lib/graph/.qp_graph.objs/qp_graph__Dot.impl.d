lib/graph/dot.ml: Buffer Fun Graph List Printf
