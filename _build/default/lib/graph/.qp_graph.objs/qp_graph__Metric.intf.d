lib/graph/metric.mli: Format Graph
