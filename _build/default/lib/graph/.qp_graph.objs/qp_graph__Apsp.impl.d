lib/graph/apsp.ml: Array Dijkstra Graph
