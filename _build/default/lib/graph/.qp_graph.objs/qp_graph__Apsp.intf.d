lib/graph/apsp.mli: Graph
