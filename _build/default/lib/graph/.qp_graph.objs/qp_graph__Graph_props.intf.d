lib/graph/graph_props.mli: Metric
