lib/graph/metric.ml: Array Dijkstra Format Graph Qp_util
