let kruskal g =
  let es = Graph.edges g in
  let sorted = List.sort (fun (_, _, a) (_, _, b) -> compare a b) es in
  let uf = Union_find.create (Graph.n_vertices g) in
  List.filter (fun (u, v, _) -> Union_find.union uf u v) sorted

let total_weight es = List.fold_left (fun acc (_, _, w) -> acc +. w) 0. es
