(** Disjoint-set forest with path compression and union by rank. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> bool
(** [union t a b] merges the two classes; returns [false] when they
    were already merged. *)

val same : t -> int -> int -> bool
val n_classes : t -> int
