(** Binary min-heap keyed by floats, with lazy decrease-key.

    The heap stores [(key, value)] pairs; [pop_min] returns the pair
    with the smallest key. Decrease-key is implemented by reinsertion:
    callers (Dijkstra, the event simulator) tolerate stale entries by
    checking a settled set on pop. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
(** Number of stored entries, including stale reinsertions. *)

val push : 'a t -> float -> 'a -> unit
val peek_min : 'a t -> (float * 'a) option
val pop_min : 'a t -> (float * 'a) option
val clear : 'a t -> unit
