let distances_with_parents g src =
  let n = Graph.n_vertices g in
  if src < 0 || src >= n then invalid_arg "Dijkstra: source out of range";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(src) <- 0.;
  Heap.push heap 0. src;
  let rec loop () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, v) ->
        if not settled.(v) then begin
          settled.(v) <- true;
          Graph.iter_neighbors g v (fun w len ->
              let nd = d +. len in
              if nd < dist.(w) then begin
                dist.(w) <- nd;
                parent.(w) <- v;
                Heap.push heap nd w
              end)
        end;
        loop ()
  in
  loop ();
  (dist, parent)

let distances g src = fst (distances_with_parents g src)

let path g src dst =
  let dist, parent = distances_with_parents g src in
  if dist.(dst) = infinity then None
  else begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end
