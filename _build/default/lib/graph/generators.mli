(** Network topology generators.

    All generators return connected graphs. Random generators take a
    {!Qp_util.Rng.t} so that instances are reproducible. Positions used
    by the geometric models are also returned when callers want to plot
    or export them. *)

val path : int -> Graph.t
(** [path n]: vertices [0..n-1], unit edges [i -- i+1]. *)

val weighted_path : float array -> Graph.t
(** [weighted_path lens]: a path whose i-th edge has length
    [lens.(i)]. *)

val cycle : int -> Graph.t
(** Unit-length cycle; requires [n >= 3]. *)

val star : int -> Graph.t
(** [star n]: center 0 with [n-1] unit spokes. *)

val complete : int -> Graph.t
(** Unit-length complete graph. *)

val grid2d : int -> int -> Graph.t
(** [grid2d rows cols] lattice with unit edges; vertex [(r,c)] has id
    [r*cols + c]. *)

val torus2d : int -> int -> Graph.t
(** Same with wraparound edges; requires both dimensions [>= 3]. *)

val random_tree : Qp_util.Rng.t -> int -> Graph.t
(** Uniform random recursive tree with edge lengths drawn uniformly
    from [\[0.5, 1.5\]]. *)

val erdos_renyi : Qp_util.Rng.t -> int -> float -> Graph.t
(** [erdos_renyi rng n p] with unit edges; a uniform spanning-tree
    skeleton is added first so the result is always connected. *)

val random_geometric : Qp_util.Rng.t -> int -> float -> Graph.t * (float * float) array
(** [random_geometric rng n radius]: points uniform in the unit square,
    edges between pairs within [radius], lengths = Euclidean distances.
    MST edges are added to guarantee connectivity. *)

val waxman : Qp_util.Rng.t -> int -> ?alpha:float -> ?beta:float -> unit -> Graph.t * (float * float) array
(** Waxman's classic random WAN model: points uniform in the unit
    square, edge [{u,v}] present with probability
    [beta * exp (-d(u,v) / (alpha * L))] where [L] is the maximum
    inter-point distance; edge lengths are Euclidean. MST edges added
    for connectivity. Defaults: [alpha = 0.4], [beta = 0.4]. *)

val transit_stub : Qp_util.Rng.t -> transits:int -> stubs_per_transit:int -> stub_size:int -> Graph.t
(** Two-level WAN hierarchy (a simplified GT-ITM transit-stub model):
    a unit-length cycle of transit routers, each attached to
    [stubs_per_transit] stub networks of [stub_size] nodes; stub-local
    edges are short (0.1), stub-to-transit uplinks medium (0.5),
    transit-to-transit long (1.0), with a few random extra stub edges.
    Total nodes: [transits * (1 + stubs_per_transit * stub_size)]. *)

val integrality_gap_graph : int -> Graph.t
(** The Figure-1 instance of Appendix A on [n = k*k] vertices: [v0 = 0]
    with [n - k] unit-length spokes, one of which continues into a path
    of [k - 1] further vertices, so the sorted distances from [v0] are
    [1] (n-k times) then [2, 3, ..., k]. Requires [k >= 2]. *)

val barbell : int -> Graph.t
(** Two unit-length cliques of size [k] joined by a single edge;
    [2k] vertices. Used as a clustered-topology stress case. *)

val caterpillar : Qp_util.Rng.t -> int -> Graph.t
(** A random path with random unit-length legs; [n] total vertices. *)
