(** All-pairs shortest paths.

    Two independent implementations: repeated Dijkstra (the production
    path, used by {!Metric.of_graph}) and Floyd–Warshall (used as a
    cross-check oracle in property tests). *)

val repeated_dijkstra : Graph.t -> float array array
(** Distance matrix via n Dijkstra runs; [infinity] for unreachable
    pairs. *)

val floyd_warshall : Graph.t -> float array array
(** Distance matrix via Floyd–Warshall dynamic programming. *)
