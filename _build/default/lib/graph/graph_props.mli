(** Structural graph/metric properties used by experiments and the
    CLI: eccentricities, radius/diameter, center, 1-median. *)

val eccentricities : Metric.t -> float array
(** [ecc.(v)] = max distance from [v]. *)

val radius : Metric.t -> float
val diameter : Metric.t -> float
val center : Metric.t -> int
(** A vertex with minimum eccentricity (smallest id on ties). *)

val one_median : Metric.t -> int
(** A vertex minimizing the average distance to all vertices. *)

val average_path_length : Metric.t -> float
(** Mean over ordered pairs (v <> v'). *)
