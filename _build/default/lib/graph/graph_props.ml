let eccentricities m =
  let n = Metric.size m in
  Array.init n (fun v ->
      let worst = ref 0. in
      for w = 0 to n - 1 do
        if Metric.dist m v w > !worst then worst := Metric.dist m v w
      done;
      !worst)

let radius m = Array.fold_left Float.min infinity (eccentricities m)

let diameter m = Metric.diameter m

let center m =
  let ecc = eccentricities m in
  let best = ref 0 in
  Array.iteri (fun v e -> if e < ecc.(!best) then best := v) ecc;
  !best

let one_median m =
  let n = Metric.size m in
  let best = ref 0 and best_cost = ref infinity in
  for v = 0 to n - 1 do
    let c = Metric.average_distance m v in
    if c < !best_cost then begin
      best_cost := c;
      best := v
    end
  done;
  !best

let average_path_length m =
  let n = Metric.size m in
  if n < 2 then 0.
  else begin
    let acc = ref 0. in
    for v = 0 to n - 1 do
      for w = 0 to n - 1 do
        if v <> w then acc := !acc +. Metric.dist m v w
      done
    done;
    !acc /. float_of_int (n * (n - 1))
  end
