(** Single-source shortest paths (Dijkstra with a binary heap).

    Edge lengths are positive by construction of {!Graph.t}, so
    Dijkstra's invariant holds. Unreachable vertices get distance
    [infinity]. *)

val distances : Graph.t -> int -> float array
(** [distances g src] is the array of shortest-path distances from
    [src]; [infinity] for unreachable vertices. *)

val distances_with_parents : Graph.t -> int -> float array * int array
(** Also returns the shortest-path tree: [parents.(v)] is the
    predecessor of [v] ([-1] for the source and unreachable nodes). *)

val path : Graph.t -> int -> int -> int list option
(** [path g src dst] is a shortest path as a vertex list from [src] to
    [dst], or [None] if unreachable. *)
