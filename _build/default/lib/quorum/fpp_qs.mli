(** Finite-projective-plane quorum systems (Maekawa's sqrt(n)
    construction [Maekawa 85]).

    For a prime [q], the projective plane PG(2,q) has [q^2 + q + 1]
    points and as many lines; every line has [q + 1] points and any two
    lines meet in exactly one point — the textbook optimal-load quorum
    system with quorum size O(sqrt n). *)

val make : int -> Quorum.system
(** [make q] for a prime [q <= 31]. Universe [q^2 + q + 1]; quorums are
    the lines. @raise Invalid_argument if [q] is not prime or too
    large. *)

val is_prime : int -> bool
