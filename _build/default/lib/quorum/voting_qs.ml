let threshold votes =
  let total = Array.fold_left ( + ) 0 votes in
  (total / 2) + 1

let quorum_votes votes q = Array.fold_left (fun acc u -> acc + votes.(u)) 0 q

let make votes =
  let n = Array.length votes in
  if n = 0 then invalid_arg "Voting_qs.make: empty vote assignment";
  if n > 20 then invalid_arg "Voting_qs.make: universe > 20";
  Array.iter (fun v -> if v <= 0 then invalid_arg "Voting_qs.make: non-positive votes") votes;
  let need = threshold votes in
  let quorums = ref [] in
  (* Enumerate subsets; keep those with a majority of votes that lose
     it when any single element is removed (minimality). *)
  for mask = 1 to (1 lsl n) - 1 do
    let total = ref 0 in
    for u = 0 to n - 1 do
      if mask land (1 lsl u) <> 0 then total := !total + votes.(u)
    done;
    if !total >= need then begin
      let minimal = ref true in
      for u = 0 to n - 1 do
        if mask land (1 lsl u) <> 0 && !total - votes.(u) >= need then minimal := false
      done;
      if !minimal then begin
        let members = ref [] in
        for u = n - 1 downto 0 do
          if mask land (1 lsl u) <> 0 then members := u :: !members
        done;
        quorums := Array.of_list !members :: !quorums
      end
    end
  done;
  (* Two majorities always share an element; skip the O(m^2) check. *)
  Quorum.make_unchecked ~universe:n (Array.of_list (List.rev !quorums))
