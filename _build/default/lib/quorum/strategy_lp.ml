module Lp = Qp_lp.Lp
module Simplex = Qp_lp.Simplex

type result = { load : float; strategy : Strategy.t }

let optimal system =
  let m = Quorum.n_quorums system in
  let n = Quorum.universe system in
  (* Variables: p(Q) for each quorum, then L last. *)
  let l_var = m in
  let lp = Lp.create (m + 1) in
  Lp.set_objective lp l_var 1.;
  Lp.add_constraint lp (List.init m (fun qi -> (qi, 1.))) Lp.Eq 1.;
  for u = 0 to n - 1 do
    let terms =
      List.filter_map
        (fun qi -> if Quorum.mem (Quorum.quorum system qi) u then Some (qi, 1.) else None)
        (List.init m (fun qi -> qi))
    in
    if terms <> [] then Lp.add_constraint lp ((l_var, -1.) :: terms) Lp.Le 0.
  done;
  match Simplex.solve lp with
  | Simplex.Optimal { x; objective } ->
      let weights = Array.sub x 0 m in
      { load = objective; strategy = Strategy.of_weights system weights }
  | Simplex.Infeasible | Simplex.Unbounded ->
      (* Impossible: the uniform strategy with L = 1 is feasible and
         L >= 0 bounds the objective. *)
      assert false

let meets_naor_wool_bound system =
  let r = optimal system in
  let c =
    Array.fold_left
      (fun acc q -> Stdlib.min acc (Array.length q))
      max_int (Quorum.quorums system)
  in
  let n = float_of_int (Quorum.universe system) in
  let bound = Float.max (1. /. float_of_int c) (float_of_int c /. n) in
  Float.abs (r.load -. bound) <= 1e-6
