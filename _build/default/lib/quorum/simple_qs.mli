(** Degenerate and small quorum systems used as baselines and test
    fixtures. *)

val singleton : int -> int -> Quorum.system
(** [singleton n u] over a universe of size [n]: the single quorum
    [{u}] — the load-1 "Lin solution" the paper criticizes in Related
    Work (all advantages of distribution lost). *)

val star : int -> Quorum.system
(** [star n]: quorums [{0, i}] for [i = 1..n-1] (all through hub 0);
    for [n = 1] the single quorum [{0}]. *)

val wheel : int -> Quorum.system
(** [wheel n] for [n >= 3]: hub 0, rim [1..n-1]; quorums are [{0, i}]
    for each rim element plus the full rim — the classic wheel
    coterie. *)

val triangle : unit -> Quorum.system
(** The 2-of-3 majority on universe [{0,1,2}]: quorums are all pairs.
    The smallest non-trivial coterie; handy in unit tests. *)
