(** Byzantine quorum systems [Malkhi–Reiter 98], the paper's reference
    [16]. Ordinary intersection tolerates crashes; tolerating [f]
    BYZANTINE servers needs larger overlaps:

    - [f]-dissemination: any two quorums share at least [f + 1]
      elements (self-verifying data: one correct server in the
      intersection suffices);
    - [f]-masking: any two quorums share at least [2f + 1] elements
      (a correct majority of the intersection out-votes the liars).

    The threshold constructions below are the classic ones; the
    placement machinery applies to them unchanged — experiment E14
    prices the extra overlap in access delay. *)

val intersection_degree : Quorum.system -> int
(** Minimum [|Q ∩ Q'|] over distinct quorum pairs (the family's
    Byzantine budget); equals the universe size for single-quorum
    systems. *)

val is_dissemination : Quorum.system -> f:int -> bool
(** [intersection_degree >= f + 1]. *)

val is_masking : Quorum.system -> f:int -> bool
(** [intersection_degree >= 2f + 1]. *)

val max_dissemination_f : Quorum.system -> int
val max_masking_f : Quorum.system -> int
(** Largest tolerable [f] under each property (possibly 0; -1 when
    even f = 0 fails, which cannot happen for valid systems). *)

val dissemination_majority : n:int -> f:int -> Quorum.system
(** Threshold system with quorum size [ceil ((n + f + 1) / 2)].
    @raise Invalid_argument unless [n >= 3f + 1] (availability: a
    quorum must survive [f] failures) or the family is too large to
    enumerate. *)

val masking_majority : n:int -> f:int -> Quorum.system
(** Threshold system with quorum size [ceil ((n + 2f + 1) / 2)].
    @raise Invalid_argument unless [n >= 4f + 1]. *)
