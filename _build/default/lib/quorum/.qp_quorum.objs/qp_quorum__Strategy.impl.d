lib/quorum/strategy.ml: Array Float Qp_util Quorum
