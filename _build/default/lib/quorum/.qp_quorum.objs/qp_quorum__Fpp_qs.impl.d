lib/quorum/fpp_qs.ml: Array Quorum
