lib/quorum/availability.mli: Qp_util Quorum
