lib/quorum/walls_qs.ml: Array List Quorum
