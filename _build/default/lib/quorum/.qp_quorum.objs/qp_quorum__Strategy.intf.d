lib/quorum/strategy.mli: Qp_util Quorum
