lib/quorum/simple_qs.ml: Array Quorum
