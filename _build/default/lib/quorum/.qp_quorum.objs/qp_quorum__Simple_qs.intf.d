lib/quorum/simple_qs.mli: Quorum
