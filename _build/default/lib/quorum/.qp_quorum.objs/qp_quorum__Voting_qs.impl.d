lib/quorum/voting_qs.ml: Array List Quorum
