lib/quorum/probe.ml: Array Qp_util Quorum Stdlib
