lib/quorum/availability.ml: Array Float Hashtbl Qp_util Quorum Stdlib
