lib/quorum/majority_qs.mli: Qp_util Quorum
