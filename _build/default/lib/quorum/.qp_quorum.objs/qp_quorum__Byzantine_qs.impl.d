lib/quorum/byzantine_qs.ml: Array List Qp_util Quorum
