lib/quorum/quorum.mli: Format
