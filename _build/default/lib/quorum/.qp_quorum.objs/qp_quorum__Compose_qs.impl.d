lib/quorum/compose_qs.ml: Array List Quorum
