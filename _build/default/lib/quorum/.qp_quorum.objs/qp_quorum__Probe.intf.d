lib/quorum/probe.mli: Qp_util Quorum
