lib/quorum/quorum.ml: Array Format List
