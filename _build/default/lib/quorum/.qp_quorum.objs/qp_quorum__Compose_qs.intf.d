lib/quorum/compose_qs.mli: Quorum Strategy
