lib/quorum/majority_qs.ml: Array List Qp_util Quorum
