lib/quorum/grid_qs.mli: Quorum Strategy
