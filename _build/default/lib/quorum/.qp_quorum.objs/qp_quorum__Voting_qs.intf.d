lib/quorum/voting_qs.mli: Quorum
