lib/quorum/byzantine_qs.mli: Quorum
