lib/quorum/grid_qs.ml: Array Float Quorum Strategy
