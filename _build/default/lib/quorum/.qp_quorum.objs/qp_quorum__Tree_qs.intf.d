lib/quorum/tree_qs.mli: Quorum
