lib/quorum/walls_qs.mli: Quorum
