lib/quorum/fpp_qs.mli: Quorum
