lib/quorum/tree_qs.ml: Array Int List Quorum Set
