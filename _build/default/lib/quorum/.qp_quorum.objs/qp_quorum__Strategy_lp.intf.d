lib/quorum/strategy_lp.mli: Quorum Strategy
