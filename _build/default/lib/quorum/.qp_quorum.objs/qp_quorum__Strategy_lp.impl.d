lib/quorum/strategy_lp.ml: Array Float List Qp_lp Quorum Stdlib Strategy
