module Combin = Qp_util.Combin

let check_params n t =
  if n < 1 then invalid_arg "Majority_qs: n >= 1 required";
  if t > n then invalid_arg "Majority_qs: t <= n required";
  if 2 * t <= n then invalid_arg "Majority_qs: 2t > n required for intersection"

let n_quorums ~n ~t =
  check_params n t;
  Combin.binomial n t

let make ~n ~t =
  check_params n t;
  if Combin.binomial n t > 500_000 then
    invalid_arg "Majority_qs.make: family too large to enumerate";
  let quorums = ref [] in
  Combin.choose_iter n t (fun subset -> quorums := Array.of_list subset :: !quorums);
  (* Any two size-t subsets with 2t > n intersect by pigeonhole. *)
  Quorum.make_unchecked ~universe:n (Array.of_list (List.rev !quorums))

let simple_majority n = make ~n ~t:((n / 2) + 1)

let quorums_containing_first_of ~n ~t i =
  check_params n t;
  if i < 0 || i >= n then invalid_arg "Majority_qs: element out of range";
  Combin.binomial (n - i - 1) (t - 1)

let sample_quorum rng ~n ~t =
  check_params n t;
  let chosen = Qp_util.Rng.sample_distinct rng t n in
  let arr = Array.of_list chosen in
  Array.sort compare arr;
  arr
