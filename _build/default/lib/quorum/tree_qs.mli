(** The tree quorum protocol of Agrawal and El Abbadi (1990), one of
    the classic constructions the paper's introduction alludes to.

    Elements are the nodes of a complete binary tree of given depth
    (node 0 is the root; node [v] has children [2v+1] and [2v+2]).
    A quorum of a subtree is either its root together with a quorum of
    one child subtree, or the union of a quorum of each child subtree.
    Intersection follows by induction on the depth. *)

val make : int -> Quorum.system
(** [make depth] enumerates all quorums of the complete binary tree of
    the given depth (universe size [2^(depth+1) - 1]).
    @raise Invalid_argument if [depth < 0] or [depth > 3] (the family
    grows doubly exponentially). *)

val universe_size : int -> int
val n_quorums : int -> int
(** Family size for a given depth, by the recurrence
    [f(d) = 2 f(d-1) + f(d-1)^2], [f(0) = 1]. *)
