(** Weighted voting [Gifford 79] — the referenced construction behind
    the Majority system.

    Each element holds a positive integer number of votes; a quorum is
    any MINIMAL set gathering strictly more than half the total votes.
    Any two quorums intersect because two disjoint sets cannot both
    hold a strict majority of the votes. With all weights 1 this is
    exactly the Majority coterie. *)

val make : int array -> Quorum.system
(** [make votes] materializes the minimal majority-vote sets.
    @raise Invalid_argument on empty input, non-positive votes, or
    when the universe exceeds 20 elements (enumeration guard). *)

val quorum_votes : int array -> int array -> int
(** [quorum_votes votes q] = votes gathered by the element set [q]. *)

val threshold : int array -> int
(** Smallest vote count constituting a majority:
    [floor (total/2) + 1]. *)
