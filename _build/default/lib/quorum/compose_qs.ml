let check outer inners =
  if Array.length inners <> Quorum.universe outer then
    invalid_arg "Compose_qs: need one inner system per outer element"

let block_offsets inners =
  let n = Array.length inners in
  let offsets = Array.make n 0 in
  for i = 1 to n - 1 do
    offsets.(i) <- offsets.(i - 1) + Quorum.universe inners.(i - 1)
  done;
  offsets

let n_composed_quorums outer inners =
  check outer inners;
  Array.fold_left
    (fun acc q ->
      acc + Array.fold_left (fun prod i -> prod * Quorum.n_quorums inners.(i)) 1 q)
    0 (Quorum.quorums outer)

let compose outer inners =
  check outer inners;
  if n_composed_quorums outer inners > 200_000 then
    invalid_arg "Compose_qs.compose: composed family too large";
  let offsets = block_offsets inners in
  let universe =
    Array.fold_left (fun acc s -> acc + Quorum.universe s) 0 inners
  in
  let composed = ref [] in
  Array.iter
    (fun outer_q ->
      (* Cartesian product of inner quorum choices over the blocks of
         this outer quorum. *)
      let rec expand blocks acc =
        match blocks with
        | [] -> composed := Array.of_list (List.rev acc) :: !composed
        | i :: rest ->
            Array.iter
              (fun inner_q ->
                let shifted =
                  List.rev (Array.to_list (Array.map (fun u -> offsets.(i) + u) inner_q))
                in
                expand rest (shifted @ acc))
              (Quorum.quorums inners.(i))
      in
      expand (Array.to_list outer_q) [])
    (Quorum.quorums outer);
  (* Intersection holds by the composition argument; verified for the
     sizes used in tests. *)
  Quorum.make_unchecked ~universe (Array.of_list (List.rev !composed))

let uniform_recursive_strategy outer inners =
  check outer inners;
  let m_outer = Quorum.n_quorums outer in
  let weights = ref [] in
  Array.iter
    (fun outer_q ->
      let combos =
        Array.fold_left (fun prod i -> prod * Quorum.n_quorums inners.(i)) 1 outer_q
      in
      let w = 1. /. float_of_int m_outer /. float_of_int combos in
      for _ = 1 to combos do
        weights := w :: !weights
      done)
    (Quorum.quorums outer);
  Array.of_list (List.rev !weights)
