(** The Grid quorum system [Cheung–Ammar–Ahamad 92, Kumar–Rabinovich–
    Sinha 93] used in Section 4.1 of the paper.

    The [k*k] elements are arranged in a square matrix; the quorum
    [Q_{i,j}] is the union of row [i] and column [j], so there are
    [k^2] quorums of [2k-1] elements each. Under the uniform strategy
    every element has load [(2k-1)/k^2], which is optimal for this
    system [Naor–Wool 98]. *)

val make : int -> Quorum.system
(** [make k] for [k >= 1]; element [(i,j)] has id [i*k + j]. *)

val side : Quorum.system -> int
(** Recovers [k] from a grid system ([sqrt universe]). *)

val quorum_index : int -> int -> int -> int
(** [quorum_index k i j] is the index of quorum [Q_{i,j}]. *)

val uniform_strategy : Quorum.system -> Strategy.t
(** The load-optimal uniform strategy. *)

val element_load : int -> float
(** [element_load k] = [(2k-1)/k^2], the uniform-strategy load of
    every element. *)
