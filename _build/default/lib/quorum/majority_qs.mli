(** Threshold (Majority) quorum systems [Gifford 79, Thomas 79],
    generalized as in Section 4.2 of the paper: all subsets of size
    [t] of an [n]-element universe, for [t > n/2] (so any two quorums
    intersect).

    The explicit family has [C(n,t)] quorums, so [make] guards against
    blow-up; the paper's closed form (Eq. 19) and the simulator use
    {!sample_quorum} / the descriptor instead of enumeration when [n]
    is large. *)

val make : n:int -> t:int -> Quorum.system
(** Explicit enumeration. @raise Invalid_argument unless [2t > n],
    [t <= n], and [C(n,t) <= 500_000]. *)

val simple_majority : int -> Quorum.system
(** [simple_majority n] = [make ~n ~t:(n/2 + 1)]. *)

val n_quorums : n:int -> t:int -> int
(** [C(n,t)] without enumerating. *)

val quorums_containing_first_of : n:int -> t:int -> int -> int
(** [quorums_containing_first_of ~n ~t i] = number of size-[t] subsets
    containing element [i] but none of [0..i-1] — the counting step of
    Eq. (19): [C(n - i - 1, t - 1)]. *)

val sample_quorum : Qp_util.Rng.t -> n:int -> t:int -> int array
(** Uniform random size-[t] subset, without enumerating the family. *)
