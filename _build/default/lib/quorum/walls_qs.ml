let check widths =
  if widths = [] then invalid_arg "Walls_qs: empty wall";
  List.iter (fun w -> if w <= 0 then invalid_arg "Walls_qs: non-positive row width") widths

let n_quorums widths =
  check widths;
  let arr = Array.of_list widths in
  let d = Array.length arr in
  let total = ref 0 in
  for i = 0 to d - 1 do
    let prod = ref 1 in
    for j = i + 1 to d - 1 do
      prod := !prod * arr.(j)
    done;
    total := !total + !prod
  done;
  !total

let make widths =
  check widths;
  if n_quorums widths > 500_000 then invalid_arg "Walls_qs.make: family too large";
  let arr = Array.of_list widths in
  let d = Array.length arr in
  let offsets = Array.make d 0 in
  for i = 1 to d - 1 do
    offsets.(i) <- offsets.(i - 1) + arr.(i - 1)
  done;
  let universe = offsets.(d - 1) + arr.(d - 1) in
  let row i = Array.init arr.(i) (fun c -> offsets.(i) + c) in
  let quorums = ref [] in
  (* For full row i, extend with each combination of representatives
     from rows i+1 .. d-1. *)
  for i = 0 to d - 1 do
    let base = row i in
    let rec extend j acc =
      if j = d then quorums := Array.of_list (List.rev acc) :: !quorums
      else
        for c = 0 to arr.(j) - 1 do
          extend (j + 1) ((offsets.(j) + c) :: acc)
        done
    in
    extend (i + 1) (List.rev (Array.to_list base))
  done;
  Quorum.make_unchecked ~universe (Array.of_list (List.rev !quorums))
