type outcome = { probes : int; found : bool }

type state = Unknown | Live | Dead

let min_quorum_size s =
  Array.fold_left (fun acc q -> Stdlib.min acc (Array.length q)) max_int (Quorum.quorums s)

let greedy_probe rng s ~p =
  if p < 0. || p > 1. then invalid_arg "Probe.greedy_probe: p out of range";
  let n = Quorum.universe s in
  let st = Array.make n Unknown in
  let quorums = Quorum.quorums s in
  let alive = Array.make (Array.length quorums) true in
  let probes = ref 0 in
  let result = ref None in
  while !result = None do
    (* A quorum is verified when all members are Live; it is pruned
       when a member is Dead. Pick the viable quorum with the fewest
       Unknown members and probe one of them. *)
    let best = ref (-1) in
    let best_unknown = ref max_int in
    Array.iteri
      (fun qi q ->
        if alive.(qi) then begin
          let unknown = ref 0 in
          Array.iter (fun u -> if st.(u) = Unknown then incr unknown) q;
          if !unknown < !best_unknown then begin
            best_unknown := !unknown;
            best := qi
          end
        end)
      quorums;
    if !best < 0 then result := Some false (* every quorum pruned *)
    else if !best_unknown = 0 then result := Some true
    else begin
      let q = quorums.(!best) in
      let u =
        match Array.find_opt (fun u -> st.(u) = Unknown) q with
        | Some u -> u
        | None -> assert false
      in
      incr probes;
      if Qp_util.Rng.uniform rng < p then begin
        st.(u) <- Dead;
        (* Prune every quorum containing u. *)
        Array.iteri
          (fun qi q -> if alive.(qi) && Quorum.mem q u then alive.(qi) <- false)
          quorums
      end
      else st.(u) <- Live
    end
  done;
  { probes = !probes; found = (match !result with Some b -> b | None -> assert false) }

type stats = {
  mean_probes : float;
  success_rate : float;
  mean_probes_on_success : float;
}

let estimate rng s ~p ~samples =
  if samples <= 0 then invalid_arg "Probe.estimate: samples must be positive";
  let total = ref 0 in
  let successes = ref 0 in
  let success_probes = ref 0 in
  for _ = 1 to samples do
    let o = greedy_probe rng s ~p in
    total := !total + o.probes;
    if o.found then begin
      incr successes;
      success_probes := !success_probes + o.probes
    end
  done;
  {
    mean_probes = float_of_int !total /. float_of_int samples;
    success_rate = float_of_int !successes /. float_of_int samples;
    mean_probes_on_success =
      (if !successes = 0 then 0.
       else float_of_int !success_probes /. float_of_int !successes);
  }
