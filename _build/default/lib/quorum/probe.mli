(** Probe complexity [Peleg–Wool, "How to be an efficient snoop"]:
    how many elements must a client contact, adaptively, to find a
    live quorum — or certify that none is fully alive — when each
    element has failed independently with probability [p]?

    This module simulates a natural greedy adaptive prober: always
    probe the next unknown element of the quorum that currently needs
    the fewest additional live answers, pruning quorums as soon as one
    of their elements is found dead. Exact lower bound: at least
    [c(Q)] (smallest quorum size) probes are needed on failure-free
    runs, and the greedy prober meets it. *)

type outcome = {
  probes : int; (* elements contacted *)
  found : bool; (* a fully-live quorum was verified *)
}

val greedy_probe : Qp_util.Rng.t -> Quorum.system -> p:float -> outcome
(** One adaptive probing run with iid element failures. *)

type stats = {
  mean_probes : float;
  success_rate : float;
  mean_probes_on_success : float;
}

val estimate : Qp_util.Rng.t -> Quorum.system -> p:float -> samples:int -> stats

val min_quorum_size : Quorum.system -> int
(** [c(Q)], the failure-free probe optimum. *)
