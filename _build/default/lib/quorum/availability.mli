(** Availability analysis of quorum systems.

    Classic quantities from the quorum-systems literature the paper
    builds on [Naor–Wool 98, Peleg–Wool 97]: under independent node
    failures with probability [p], the system fails when no quorum is
    fully alive — i.e. when the failed set is a transversal (hits
    every quorum). *)

val failure_probability : Quorum.system -> float -> float
(** Exact failure probability under iid failure probability [p],
    by enumeration over the [2^universe] failure patterns.
    @raise Invalid_argument when [universe > 22] (use
    {!failure_probability_mc}). *)

val failure_probability_mc :
  Qp_util.Rng.t -> Quorum.system -> float -> samples:int -> float
(** Monte-Carlo estimate for larger universes. *)

val resilience : Quorum.system -> int
(** Size of the smallest transversal minus one: the largest [f] such
    that EVERY set of [f] failures leaves some quorum alive. Computed
    by branch-and-bound over transversals; exponential worst case,
    fine for the explicit systems in this repository. *)

val is_transversal : Quorum.system -> int array -> bool
(** Does the given (sorted or unsorted) node set intersect every
    quorum? *)

val naor_wool_load_lower_bound : Quorum.system -> float
(** The Naor–Wool bound: every strategy has system load at least
    [max (1/c(Q), c(Q)/n)] where [c(Q)] is the size of the smallest
    quorum. Useful to certify the optimality of the uniform strategies
    used in Section 4 (e.g. FPP meets it with equality). *)
