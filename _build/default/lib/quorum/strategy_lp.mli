(** The exact system load L(Q) of a quorum system, via LP.

    [Naor–Wool 98] define L(Q) as the minimum over access strategies
    of the maximum element load. For the classic constructions the
    optimal strategy is known in closed form (uniform for Grid and
    FPP); for arbitrary systems it is this small LP:

    minimize L   s.t.  sum_{Q ∋ u} p(Q) <= L  for every element u,
                       sum_Q p(Q) = 1,  p >= 0.

    The paper's Footnote 1 assumes such a load-optimal strategy is
    chosen upstream; this module makes that step executable for any
    explicit system. *)

type result = {
  load : float; (* L(Q) *)
  strategy : Strategy.t; (* a witness achieving it *)
}

val optimal : Quorum.system -> result
(** Always feasible (any distribution works); the simplex is exact at
    these sizes. *)

val meets_naor_wool_bound : Quorum.system -> bool
(** Whether L(Q) equals [max (1/c(Q), c(Q)/n)] (tolerance 1e-6) — true
    for the "perfect" constructions like finite projective planes. *)
