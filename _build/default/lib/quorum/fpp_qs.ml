let is_prime q =
  if q < 2 then false
  else begin
    let rec go d = d * d > q || (q mod d <> 0 && go (d + 1)) in
    go 2
  end

let make q =
  if not (is_prime q) then invalid_arg "Fpp_qs.make: q must be prime";
  if q > 31 then invalid_arg "Fpp_qs.make: q <= 31 required";
  let n = (q * q) + q + 1 in
  (* Point ids: affine (x,y) -> x*q + y; point at infinity for slope m
     -> q^2 + m (m in 0..q-1); vertical direction -> q^2 + q. *)
  let affine x y = (x * q) + y in
  let inf_slope m = (q * q) + m in
  let inf_vertical = (q * q) + q in
  let lines = ref [] in
  (* Sloped lines y = m x + b. *)
  for m = 0 to q - 1 do
    for b = 0 to q - 1 do
      let pts = Array.init q (fun x -> affine x (((m * x) + b) mod q)) in
      lines := Array.append pts [| inf_slope m |] :: !lines
    done
  done;
  (* Vertical lines x = a. *)
  for a = 0 to q - 1 do
    let pts = Array.init q (fun y -> affine a y) in
    lines := Array.append pts [| inf_vertical |] :: !lines
  done;
  (* Line at infinity. *)
  lines := Array.init (q + 1) (fun m -> (q * q) + m) :: !lines;
  (* Any two lines of a projective plane meet in exactly one point;
     validated exhaustively in tests for the sizes we use. *)
  Quorum.make_unchecked ~universe:n (Array.of_list !lines)
