let make k =
  if k < 1 then invalid_arg "Grid_qs.make: k >= 1 required";
  let universe = k * k in
  let quorum i j =
    let row = Array.init k (fun c -> (i * k) + c) in
    let col = Array.init k (fun r -> (r * k) + j) in
    Array.append row col (* duplicate (i,j) removed by normalization *)
  in
  let quorums =
    Array.init (k * k) (fun idx -> quorum (idx / k) (idx mod k))
  in
  (* Intersection is structural: Q_{i,j} and Q_{i',j'} share element
     (i, j') — row i of the first crosses column j' of the second. *)
  Quorum.make_unchecked ~universe quorums

let side s =
  let k = int_of_float (Float.round (sqrt (float_of_int (Quorum.universe s)))) in
  if k * k <> Quorum.universe s then invalid_arg "Grid_qs.side: not a grid system";
  k

let quorum_index k i j =
  if i < 0 || i >= k || j < 0 || j >= k then invalid_arg "Grid_qs.quorum_index: out of range";
  (i * k) + j

let uniform_strategy s = Strategy.uniform s

let element_load k = float_of_int ((2 * k) - 1) /. float_of_int (k * k)
