(** Crumbling Walls quorum systems [Peleg–Wool 97].

    The universe is arranged in rows ("the wall") of given widths; a
    quorum takes one full row [i] plus one representative from every
    row below [i]. Any two quorums intersect: if they pick the same
    full row they share it; otherwise the one with the higher full row
    owns a representative inside the other's full row. *)

val make : int list -> Quorum.system
(** [make widths] with positive widths, listed top to bottom. The last
    row must be reachable: family size is
    [sum_i prod_{j>i} width_j]; guarded to 500_000.
    @raise Invalid_argument on empty/non-positive widths or blow-up. *)

val n_quorums : int list -> int
