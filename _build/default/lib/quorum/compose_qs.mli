(** Recursive composition of quorum systems — the classic construction
    behind hierarchical quorums (and the degenerate view of the tree
    protocol).

    [compose outer inners] replaces element [i] of [outer]'s universe
    by the whole universe of [inners.(i)]; a composed quorum picks an
    outer quorum [Q] and, for each [i in Q], one quorum of
    [inners.(i)]. Intersection: two composed quorums have outer
    quorums meeting at some [i], and inside block [i] their inner
    quorums intersect. *)

val compose : Quorum.system -> Quorum.system array -> Quorum.system
(** @raise Invalid_argument when the array length differs from the
    outer universe or the composed family would exceed 200_000
    quorums. *)

val n_composed_quorums : Quorum.system -> Quorum.system array -> int
(** Family size without materializing. *)

val block_offsets : Quorum.system array -> int array
(** Start index of each inner block in the composed universe. *)

val uniform_recursive_strategy : Quorum.system -> Quorum.system array -> Strategy.t
(** The product of uniform choices: uniform outer quorum, then uniform
    inner quorum per block — NOT the uniform distribution over the
    composed family when inner family sizes differ. *)
