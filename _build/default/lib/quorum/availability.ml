let quorum_masks s =
  Array.map
    (fun q -> Array.fold_left (fun m u -> m lor (1 lsl u)) 0 q)
    (Quorum.quorums s)

let failure_probability s p =
  let n = Quorum.universe s in
  if n > 22 then invalid_arg "Availability.failure_probability: universe > 22";
  if p < 0. || p > 1. then invalid_arg "Availability.failure_probability: p out of range";
  let masks = quorum_masks s in
  let total = ref 0. in
  (* [alive] ranges over subsets of live nodes; the system is up iff
     some quorum is contained in the live set. *)
  for alive = 0 to (1 lsl n) - 1 do
    let up = Array.exists (fun m -> m land alive = m) masks in
    if not up then begin
      let k = ref 0 in
      let m = ref alive in
      while !m <> 0 do
        m := !m land (!m - 1);
        incr k
      done;
      (* Probability of exactly this live set. *)
      total :=
        !total +. ((1. -. p) ** float_of_int !k *. (p ** float_of_int (n - !k)))
    end
  done;
  !total

let failure_probability_mc rng s p ~samples =
  if samples <= 0 then invalid_arg "Availability.failure_probability_mc: samples <= 0";
  let n = Quorum.universe s in
  let masks = quorum_masks s in
  let alive = Array.make n false in
  let failures = ref 0 in
  for _ = 1 to samples do
    for u = 0 to n - 1 do
      alive.(u) <- Qp_util.Rng.uniform rng >= p
    done;
    let up =
      if n <= 62 then begin
        let alive_mask = ref 0 in
        for u = 0 to n - 1 do
          if alive.(u) then alive_mask := !alive_mask lor (1 lsl u)
        done;
        Array.exists (fun m -> m land !alive_mask = m) masks
      end
      else
        Array.exists
          (fun q -> Array.for_all (fun u -> alive.(u)) q)
          (Quorum.quorums s)
    in
    if not up then incr failures
  done;
  float_of_int !failures /. float_of_int samples

let is_transversal s nodes =
  let set = Array.copy nodes in
  Array.sort compare set;
  Array.for_all (fun q -> Quorum.intersect q set) (Quorum.quorums s)

(* Smallest transversal via branch and bound on the quorum list:
   every transversal must hit the first quorum, recurse on each
   choice. *)
let min_transversal_size s =
  let quorums = Quorum.quorums s in
  let m = Array.length quorums in
  let best = ref max_int in
  let chosen = Hashtbl.create 16 in
  let rec go qi size =
    if size >= !best then ()
    else if qi = m then best := size
    else begin
      let q = quorums.(qi) in
      if Array.exists (fun u -> Hashtbl.mem chosen u) q then go (qi + 1) size
      else
        Array.iter
          (fun u ->
            Hashtbl.replace chosen u ();
            go (qi + 1) (size + 1);
            Hashtbl.remove chosen u)
          q
    end
  in
  go 0 0;
  !best

let resilience s = min_transversal_size s - 1

let naor_wool_load_lower_bound s =
  let c =
    Array.fold_left
      (fun acc q -> Stdlib.min acc (Array.length q))
      max_int (Quorum.quorums s)
  in
  let n = float_of_int (Quorum.universe s) in
  Float.max (1. /. float_of_int c) (float_of_int c /. n)
