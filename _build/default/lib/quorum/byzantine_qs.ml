let intersection_degree s =
  let qs = Quorum.quorums s in
  let m = Array.length qs in
  if m = 1 then Quorum.universe s
  else begin
    let best = ref max_int in
    for i = 0 to m - 1 do
      for j = i + 1 to m - 1 do
        let d = Array.length (Quorum.intersection qs.(i) qs.(j)) in
        if d < !best then best := d
      done
    done;
    !best
  end

let is_dissemination s ~f =
  if f < 0 then invalid_arg "Byzantine_qs: f >= 0 required";
  intersection_degree s >= f + 1

let is_masking s ~f =
  if f < 0 then invalid_arg "Byzantine_qs: f >= 0 required";
  intersection_degree s >= (2 * f) + 1

let max_dissemination_f s = intersection_degree s - 1

let max_masking_f s = (intersection_degree s - 1) / 2

let threshold ~n ~t =
  if Qp_util.Combin.binomial n t > 500_000 then
    invalid_arg "Byzantine_qs: family too large to enumerate";
  let quorums = ref [] in
  Qp_util.Combin.choose_iter n t (fun subset ->
      quorums := Array.of_list subset :: !quorums);
  Quorum.make_unchecked ~universe:n (Array.of_list (List.rev !quorums))

let dissemination_majority ~n ~f =
  if f < 0 then invalid_arg "Byzantine_qs: f >= 0 required";
  if n < (3 * f) + 1 then
    invalid_arg "Byzantine_qs.dissemination_majority: n >= 3f + 1 required";
  threshold ~n ~t:((n + f + 2) / 2)

let masking_majority ~n ~f =
  if f < 0 then invalid_arg "Byzantine_qs: f >= 0 required";
  if n < (4 * f) + 1 then invalid_arg "Byzantine_qs.masking_majority: n >= 4f + 1 required";
  threshold ~n ~t:((n + (2 * f) + 2) / 2)
