let singleton n u =
  if n < 1 then invalid_arg "Simple_qs.singleton: n >= 1 required";
  if u < 0 || u >= n then invalid_arg "Simple_qs.singleton: element out of range";
  Quorum.make ~universe:n [| [| u |] |]

let star n =
  if n < 1 then invalid_arg "Simple_qs.star: n >= 1 required";
  if n = 1 then Quorum.make ~universe:1 [| [| 0 |] |]
  else Quorum.make ~universe:n (Array.init (n - 1) (fun i -> [| 0; i + 1 |]))

let wheel n =
  if n < 3 then invalid_arg "Simple_qs.wheel: n >= 3 required";
  let spokes = Array.init (n - 1) (fun i -> [| 0; i + 1 |]) in
  let rim = Array.init (n - 1) (fun i -> i + 1) in
  Quorum.make ~universe:n (Array.append spokes [| rim |])

let triangle () = Quorum.make ~universe:3 [| [| 0; 1 |]; [| 0; 2 |]; [| 1; 2 |] |]
