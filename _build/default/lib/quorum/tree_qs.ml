let universe_size depth = (1 lsl (depth + 1)) - 1

let rec n_quorums depth =
  if depth = 0 then 1
  else
    let f = n_quorums (depth - 1) in
    (2 * f) + (f * f)

module Iset = Set.Make (Int)

let make depth =
  if depth < 0 then invalid_arg "Tree_qs.make: depth >= 0 required";
  if depth > 3 then invalid_arg "Tree_qs.make: depth <= 3 required (family blows up)";
  let n = universe_size depth in
  (* Quorums of the subtree rooted at [v] with [levels] levels left. *)
  let rec quorums_of v levels =
    if levels = 0 then [ Iset.singleton v ]
    else begin
      let left = quorums_of ((2 * v) + 1) (levels - 1) in
      let right = quorums_of ((2 * v) + 2) (levels - 1) in
      let with_root = List.map (Iset.add v) (left @ right) in
      let without_root =
        List.concat_map (fun ql -> List.map (Iset.union ql) right) left
      in
      with_root @ without_root
    end
  in
  let family = quorums_of 0 depth in
  let arrays = List.map (fun s -> Array.of_list (Iset.elements s)) family in
  (* The recursion above is the textbook construction; intersection is
     proved by induction and double-checked in the test suite. *)
  Quorum.make_unchecked ~universe:n (Array.of_list arrays)
