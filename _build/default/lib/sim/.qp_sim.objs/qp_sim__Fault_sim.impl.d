lib/sim/fault_sim.ml: Array Float List Qp_graph Qp_place Qp_quorum Qp_util Sim
