lib/sim/sim.ml: Qp_graph
