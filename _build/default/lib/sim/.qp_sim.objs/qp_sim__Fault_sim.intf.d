lib/sim/fault_sim.mli: Qp_place
