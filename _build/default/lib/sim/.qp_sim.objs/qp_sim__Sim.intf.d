lib/sim/sim.mli:
