lib/sim/access_sim.mli: Qp_place Qp_util
