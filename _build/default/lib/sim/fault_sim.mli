(** Fault-injection simulation of quorum accesses.

    Extends the access model with node failures — the scenario quorum
    systems exist for. A client samples a quorum, probes all its
    members in parallel, and succeeds when every member answers within
    the timeout; if some member is down it retries with a freshly
    sampled quorum (paying the timeout), up to a retry budget.

    Two failure models:

    - [Static p]: every probe independently finds its node failed with
      probability [p] (memoryless; matches the iid analysis of the
      availability literature exactly, so the simulated availability
      can be checked against {!predicted_success}).
    - [Dynamic {mtbf; mttr}]: nodes alternate exponential up/down
      periods (mean time between failures / to repair); probes to a
      down node are lost. Temporally correlated — retries hitting the
      same down replica keep failing — so availability is generally
      WORSE than the iid prediction at equal steady-state node
      availability. *)

type failure_model = Static of float | Dynamic of { mtbf : float; mttr : float }

type config = {
  problem : Qp_place.Problem.qpp;
  placement : Qp_place.Placement.t;
  failure_model : failure_model;
  timeout : float; (* client gives up on an attempt after this long *)
  max_attempts : int; (* quorum (re)tries per access *)
  accesses_per_client : int;
  arrival_rate : float;
  seed : int;
}

val default_config :
  problem:Qp_place.Problem.qpp ->
  placement:Qp_place.Placement.t ->
  failure_model:failure_model ->
  config
(** timeout = 4x metric diameter, 3 attempts, 200 accesses/client,
    rate 1.0, seed 1. *)

type report = {
  n_accesses : int;
  n_success : int;
  availability : float; (* successes / accesses *)
  predicted_success : float;
      (* iid prediction: 1 - (1 - s)^max_attempts with
         s = sum_Q p(Q) (1-p)^{|distinct nodes of Q|} *)
  mean_delay_success : float; (* completion delay incl. timeouts spent *)
  mean_attempts : float; (* attempts per access (incl. failures) *)
  attempt_histogram : int array; (* index k-1: accesses finishing in k *)
}

val run : config -> report

val iid_success_probability : config -> float
(** The closed-form single-attempt success probability under
    [Static p] (uses the placement: co-located elements share fate). *)
