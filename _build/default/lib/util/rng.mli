(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the repository flows through this module so that
    experiments and property tests are reproducible bit-for-bit from a
    seed. The generator is the splitmix64 mixer of Steele, Lea and
    Flood, which has a 64-bit state, passes BigCrush, and is trivially
    splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created
    with the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val bool : t -> bool
(** Fair coin. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate). Requires [rate > 0.]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct t k n] draws [k] distinct values from [0..n-1].
    Requires [k <= n]. *)

val categorical : t -> float array -> int
(** [categorical t w] samples index [i] with probability proportional
    to [w.(i)]. Requires non-negative weights with positive sum. *)
