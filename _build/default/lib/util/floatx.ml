let eps = 1e-9

let approx ?(tol = eps) a b =
  Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let leq ?(tol = eps) a b = a <= b +. (tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b)))

let geq ?tol a b = leq ?tol b a

let is_zero ?tol x = approx ?tol x 0.

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x
