(** ASCII table rendering for experiment output.

    Every experiment in [bench/main.ml] prints its results as one of
    these tables so that EXPERIMENTS.md rows can be regenerated
    verbatim. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts an empty table with the given column
    headers and alignments. *)

val add_row : t -> string list -> unit
(** Appends a row; the number of cells must match the header. *)

val add_rowf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats a single string and splits it on ['|']
    into cells — convenient for numeric rows:
    [add_rowf t "%d|%.3f|%s" n x s]. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between data rows. *)

val render : t -> string
val print : t -> unit
(** [print t] renders to stdout followed by a newline. *)
