let mul_check a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a then failwith "Combin: 63-bit overflow" else r

let binomial n k =
  if k < 0 || k > n then 0
  else
    let k = if k > n - k then n - k else k in
    (* Multiply then divide keeps intermediate results integral: after
       i steps the accumulator equals binomial(n-k+i, i). *)
    let rec go acc i =
      if i > k then acc else go (mul_check acc (n - k + i) / i) (i + 1)
    in
    go 1 1

let factorial n =
  if n < 0 then invalid_arg "Combin.factorial: negative";
  let rec go acc i = if i > n then acc else go (mul_check acc i) (i + 1) in
  go 1 1

let choose_iter n k f =
  if k < 0 || k > n then ()
  else
    let rec go start chosen remaining =
      if remaining = 0 then f (List.rev chosen)
      else
        for v = start to n - remaining do
          go (v + 1) (v :: chosen) (remaining - 1)
        done
    in
    go 0 [] k

let subsets_of_size n k =
  let acc = ref [] in
  choose_iter n k (fun s -> acc := s :: !acc);
  List.rev !acc

(* Lanczos approximation of log-gamma (g = 7, 9 coefficients); accurate
   to ~1e-13 for positive arguments, ample for gap reporting. *)
let lanczos =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection formula. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

let log_binomial n k =
  if k < 0 || k > n then neg_infinity
  else
    log_gamma (float_of_int (n + 1))
    -. log_gamma (float_of_int (k + 1))
    -. log_gamma (float_of_int (n - k + 1))
