(** Exact combinatorics on native ints.

    Used by the Majority closed form (Eq. 19 of the paper), whose terms
    are binomial coefficients; native 63-bit ints are exact for every
    instance size we evaluate (n <= 60). Overflow raises. *)

val binomial : int -> int -> int
(** [binomial n k] = n choose k; 0 when [k < 0] or [k > n].
    @raise Failure on 63-bit overflow. *)

val factorial : int -> int
(** Exact factorial; raises on overflow (n > 20). *)

val choose_iter : int -> int -> (int list -> unit) -> unit
(** [choose_iter n k f] calls [f] on every size-[k] subset of
    [0..n-1], each as a sorted list. *)

val subsets_of_size : int -> int -> int list list
(** Materialized version of {!choose_iter}. *)

val log_binomial : int -> int -> float
(** Natural log of the binomial coefficient via [lgamma]; usable when
    the exact value would overflow. *)
