lib/util/floatx.mli:
