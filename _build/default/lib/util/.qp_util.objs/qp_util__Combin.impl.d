lib/util/combin.ml: Array Float List
