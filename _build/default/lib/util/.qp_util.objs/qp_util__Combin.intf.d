lib/util/combin.mli:
