lib/util/table.ml: Array Buffer Format List String
