lib/util/floatx.ml: Float
