lib/util/rng.mli:
