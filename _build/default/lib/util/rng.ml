type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: xor-shift multiply mix of the advancing
   counter. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (int64 t) mask) in
  v mod bound

let uniform t =
  (* 53 random bits scaled into [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound must be positive";
  uniform t *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. uniform t in
  -.log u /. rate

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let sample_distinct t k n =
  if k > n then invalid_arg "Rng.sample_distinct: k > n";
  (* Floyd's algorithm: k iterations, O(k) expected hash operations. *)
  let seen = Hashtbl.create (2 * k) in
  let acc = ref [] in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    let v = if Hashtbl.mem seen r then j else r in
    Hashtbl.replace seen v ();
    acc := v :: !acc
  done;
  !acc

let categorical t w =
  let total = Array.fold_left ( +. ) 0. w in
  if total <= 0. then invalid_arg "Rng.categorical: weights must have positive sum";
  let r = float t total in
  let n = Array.length w in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if r < acc then i else go (i + 1) acc
  in
  go 0 0.
