(** Tolerant float comparisons shared by the LP solver, rounding code
    and tests. One tolerance policy for the whole repository avoids the
    classic failure mode of each module inventing its own epsilon. *)

val eps : float
(** Default absolute/relative tolerance, 1e-9. *)

val approx : ?tol:float -> float -> float -> bool
(** [approx a b] holds when [|a - b| <= tol * max(1, |a|, |b|)]. *)

val leq : ?tol:float -> float -> float -> bool
(** [leq a b] is [a <= b] up to tolerance. *)

val geq : ?tol:float -> float -> float -> bool
val is_zero : ?tol:float -> float -> bool
val clamp : float -> float -> float -> float
(** [clamp lo hi x]. *)
