let check name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty input")

let sum xs = Array.fold_left ( +. ) 0. xs

let mean xs =
  check "mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check "variance" xs;
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let min xs =
  check "min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check "max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let percentile xs q =
  check "percentile" xs;
  if q < 0. || q > 100. then invalid_arg "Stats.percentile: q out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = q /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs 50.

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

let summarize xs =
  check "summarize" xs;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = min xs;
    p50 = percentile xs 50.;
    p95 = percentile xs 95.;
    max = max xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f p50=%.4f p95=%.4f max=%.4f"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.max

type online = { mutable count : int; mutable m : float; mutable s : float }

let online_create () = { count = 0; m = 0.; s = 0. }

let online_add o x =
  o.count <- o.count + 1;
  let delta = x -. o.m in
  o.m <- o.m +. (delta /. float_of_int o.count);
  o.s <- o.s +. (delta *. (x -. o.m))

let online_mean o = o.m

let online_stddev o =
  if o.count < 2 then 0. else sqrt (o.s /. float_of_int (o.count - 1))

let online_count o = o.count
