type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reverse order *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rowf t fmt =
  Format.kasprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = width - String.length s in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
  in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells aligns cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let align = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad align widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  emit_cells (List.map (fun _ -> Left) t.headers) t.headers;
  rule ();
  List.iter (function Cells c -> emit_cells t.aligns c | Separator -> rule ()) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)
