(** Single-machine weighted-completion-time scheduling with precedence
    constraints — the problem [1|prec|sum w_j C_j] used as the source
    of the paper's NP-hardness reduction (Section 3.2).

    Jobs [0..n-1] have processing times [time] and weights [weight];
    [prec] lists pairs [(i, j)] meaning job [i] must complete before
    job [j] starts. A schedule is a permutation of the jobs consistent
    with [prec]; its cost is [sum_j weight.(j) * C_j] where [C_j] is
    the completion time of job [j]. *)

type t = {
  n : int;
  time : float array;
  weight : float array;
  prec : (int * int) list;
}

val make : time:float array -> weight:float array -> prec:(int * int) list -> t
(** Validates: equal lengths, non-negative times and weights, in-range
    acyclic precedence. @raise Invalid_argument otherwise (including
    cyclic [prec]). *)

val is_feasible : t -> int array -> bool
(** [is_feasible t order] checks [order] is a permutation respecting
    [prec]. *)

val cost : t -> int array -> float
(** Weighted completion time of a feasible schedule.
    @raise Invalid_argument if infeasible. *)

val predecessors : t -> int -> int list
val successors : t -> int -> int list

val topological_order : t -> int array
(** Some feasible order (Kahn's algorithm). *)

val is_woeginger_form : t -> bool
(** The restricted form of Theorem 3.5(b): every job has either
    [T=1, w=0] or [T=0, w=1], and every precedence pair goes from a
    [T=1] job to a [T=0] job. *)

val random_woeginger : Qp_util.Rng.t -> n_unit_time:int -> n_unit_weight:int -> edge_prob:float -> t
(** Random instance in Woeginger form: [n_unit_time] jobs with
    [T=1, w=0] followed by [n_unit_weight] jobs with [T=0, w=1], each
    (time, weight) pair becoming a precedence edge independently with
    probability [edge_prob]. *)
