type t = {
  n : int;
  time : float array;
  weight : float array;
  prec : (int * int) list;
}

let predecessors t j = List.filter_map (fun (a, b) -> if b = j then Some a else None) t.prec

let successors t i = List.filter_map (fun (a, b) -> if a = i then Some b else None) t.prec

let topological_order_opt t =
  let indeg = Array.make t.n 0 in
  List.iter (fun (_, b) -> indeg.(b) <- indeg.(b) + 1) t.prec;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = Array.make t.n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!k) <- v;
    incr k;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (successors t v)
  done;
  if !k = t.n then Some order else None

let make ~time ~weight ~prec =
  let n = Array.length time in
  if n = 0 then invalid_arg "Sched.make: no jobs";
  if Array.length weight <> n then invalid_arg "Sched.make: weight length mismatch";
  Array.iter (fun x -> if x < 0. then invalid_arg "Sched.make: negative time") time;
  Array.iter (fun x -> if x < 0. then invalid_arg "Sched.make: negative weight") weight;
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n || a = b then
        invalid_arg "Sched.make: bad precedence pair")
    prec;
  let t = { n; time; weight; prec } in
  if topological_order_opt t = None then invalid_arg "Sched.make: cyclic precedence";
  t

let topological_order t =
  match topological_order_opt t with Some o -> o | None -> assert false

let is_feasible t order =
  Array.length order = t.n
  && begin
       let pos = Array.make t.n (-1) in
       let ok = ref true in
       Array.iteri
         (fun idx j ->
           if j < 0 || j >= t.n || pos.(j) >= 0 then ok := false else pos.(j) <- idx)
         order;
       !ok && List.for_all (fun (a, b) -> pos.(a) < pos.(b)) t.prec
     end

let cost t order =
  if not (is_feasible t order) then invalid_arg "Sched.cost: infeasible schedule";
  let clock = ref 0. in
  let acc = ref 0. in
  Array.iter
    (fun j ->
      clock := !clock +. t.time.(j);
      acc := !acc +. (t.weight.(j) *. !clock))
    order;
  !acc

let is_woeginger_form t =
  let type_of j =
    if t.time.(j) = 1. && t.weight.(j) = 0. then `Unit_time
    else if t.time.(j) = 0. && t.weight.(j) = 1. then `Unit_weight
    else `Other
  in
  Array.for_all (fun j -> type_of j <> `Other) (Array.init t.n (fun i -> i))
  && List.for_all
       (fun (a, b) -> type_of a = `Unit_time && type_of b = `Unit_weight)
       t.prec

let random_woeginger rng ~n_unit_time ~n_unit_weight ~edge_prob =
  if n_unit_time < 1 || n_unit_weight < 1 then
    invalid_arg "Sched.random_woeginger: need jobs of both types";
  let n = n_unit_time + n_unit_weight in
  let time = Array.init n (fun j -> if j < n_unit_time then 1. else 0.) in
  let weight = Array.init n (fun j -> if j < n_unit_time then 0. else 1.) in
  let prec = ref [] in
  for a = 0 to n_unit_time - 1 do
    for b = n_unit_time to n - 1 do
      if Qp_util.Rng.uniform rng < edge_prob then prec := (a, b) :: !prec
    done
  done;
  make ~time ~weight ~prec:!prec
