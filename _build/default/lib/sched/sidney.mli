(** Sidney decomposition for [1|prec|sum w_j C_j].

    Sidney (1975) showed that an optimal schedule can be assumed to
    process a maximum-DENSITY ideal first (an ideal is a
    predecessor-closed job set; density = weight/time), recursively.
    Chekuri–Motwani and Margot–Queyranne–Wang proved that ANY schedule
    consistent with the decomposition is a 2-approximation — the
    natural complement to this repository's exact subset-DP, usable
    far beyond its n <= 20 limit.

    The max-density ideal is found by Dinkelbach iteration on
    lambda -> max-weight closure with weights [w_j - lambda t_j],
    each closure solved exactly as a min cut ({!Qp_assign.Maxflow}). *)

val max_weight_ideal : Sched.t -> among:int list -> weights:(int -> float) -> int list
(** The maximum-weight predecessor-closed subset of [among] (ties
    toward larger sets), restricted to the precedence induced on
    [among]; may be empty when all weights are negative. *)

val max_density_ideal : Sched.t -> among:int list -> int list
(** Non-empty ideal of maximum density among the given jobs.
    @raise Invalid_argument if some job in [among] has zero processing
    time (density is unbounded; pre-filter such jobs). *)

val decomposition : Sched.t -> int list list
(** The Sidney blocks in schedule order; their densities are
    non-increasing. @raise Invalid_argument if any processing time is
    zero. *)

val schedule : Sched.t -> int array
(** A decomposition-consistent schedule (topological within each
    block): a 2-approximation for the weighted completion time. *)
