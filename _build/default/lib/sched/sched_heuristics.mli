(** List-scheduling heuristics for [1|prec|sum w_j C_j], used as
    comparison points in experiment E3 (the exact DP is the optimum
    oracle; these show the gap heuristics leave). *)

val wspt : Sched.t -> int array
(** Precedence-respecting weighted-shortest-processing-time: greedily
    schedule, among jobs whose predecessors are done, one maximizing
    [w_j / T_j] (zero-time jobs count as ratio infinity). Optimal for
    empty precedence (Smith's rule). *)

val topological : Sched.t -> int array
(** Baseline: any topological order (Kahn). *)
