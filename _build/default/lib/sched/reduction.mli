(** The Theorem 3.6 reduction: [1|prec|sum w_j C_j] (in the Woeginger
    special form of Theorem 3.5(b)) to the Single-Source Quorum
    Placement Problem on a unit path.

    Naming follows the proof: the scheduling instance has [n] jobs of
    which [m] have unit weight (and zero time); the other [n - m] have
    unit time (and zero weight). The universe gets one element [e_j]
    per unit-time job plus a hub element [e_0]; the graph is a path
    [v_0 - v_1 - ... - v_{n-m}] of unit edges; [cap v_0 = 1] pins
    [e_0] to [v_0], and the remaining capacities force exactly one
    element per node. *)

type t = {
  sched : Sched.t;
  system : Qp_quorum.Quorum.system;
  strategy : Qp_quorum.Strategy.t; (* the proof's p, with parameter epsilon *)
  graph : Qp_graph.Graph.t; (* unit path on n - m + 1 nodes *)
  capacities : float array;
  v0 : int; (* = 0 *)
  epsilon : float;
  n_unit_time : int; (* n - m *)
  n_unit_weight : int; (* m *)
  element_of_job : int array; (* unit-time job -> element id; -1 otherwise *)
}

val make : Sched.t -> t
(** @raise Invalid_argument unless the instance {!Sched.is_woeginger_form}
    and unit-time jobs precede unit-weight jobs in the numbering. *)

val hub_element : t -> int
(** [e_0]'s id (always 0). *)

val delay_of_cost : t -> float -> float
(** The proof's affine correspondence:
    [Delta_f(v0) = (eps/m) * cost + ((1-eps)/(n-m)) * sum_{i=1}^{n-m} i]. *)

val cost_of_delay : t -> float -> float
(** Inverse of {!delay_of_cost}. *)

val schedule_of_placement : t -> int array -> int array
(** [schedule_of_placement r f] converts a placement (element id ->
    path-node id, with [f.(0) = 0] and the rest a bijection onto
    [1..n-m]) into the job order [pi_f] of the proof: unit-time job
    [a] runs at position [f.(element_of_job a)], unit-weight jobs as
    early as their predecessors allow.
    @raise Invalid_argument on non-conforming placements. *)

val delay_of_placement : t -> int array -> float
(** Direct evaluation of [Delta_f(v0)] on the path (distance of node
    [v_t] from [v_0] is [t]); used to cross-check the affine map. *)
