let wspt (t : Sched.t) =
  let n = t.n in
  let indeg = Array.make n 0 in
  List.iter (fun (_, b) -> indeg.(b) <- indeg.(b) + 1) t.prec;
  let done_ = Array.make n false in
  let order = Array.make n (-1) in
  let ratio j =
    if t.time.(j) <= 0. then infinity else t.weight.(j) /. t.time.(j)
  in
  for pos = 0 to n - 1 do
    let best = ref (-1) in
    for j = 0 to n - 1 do
      if (not done_.(j)) && indeg.(j) = 0 then
        if !best < 0 || ratio j > ratio !best then best := j
    done;
    assert (!best >= 0);
    order.(pos) <- !best;
    done_.(!best) <- true;
    List.iter (fun w -> indeg.(w) <- indeg.(w) - 1) (Sched.successors t !best)
  done;
  order

let topological = Sched.topological_order
