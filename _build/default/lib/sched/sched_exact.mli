(** Exact solver for [1|prec|sum w_j C_j] by dynamic programming over
    downward-closed job subsets. Exponential in [n]; guarded to
    [n <= 20]. Used to validate the Theorem 3.6 reduction end-to-end
    and as the optimum oracle in experiment E3. *)

val solve : Sched.t -> float * int array
(** [(optimal_cost, optimal_order)].
    @raise Invalid_argument when [n > 20]. *)

val brute_force : Sched.t -> float
(** Optimal cost by enumerating all permutations ([n <= 8]); test
    oracle for {!solve}. *)
