lib/sched/reduction.ml: Array List Qp_graph Qp_quorum Sched Stdlib
