lib/sched/sched_heuristics.ml: Array List Sched
