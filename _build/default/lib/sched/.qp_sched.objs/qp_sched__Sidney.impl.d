lib/sched/sidney.ml: Array Hashtbl List Qp_assign Queue Sched
