lib/sched/sched_exact.mli: Sched
