lib/sched/sched.mli: Qp_util
