lib/sched/sched_heuristics.mli: Sched
