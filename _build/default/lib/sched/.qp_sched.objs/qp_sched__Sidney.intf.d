lib/sched/sidney.mli: Sched
