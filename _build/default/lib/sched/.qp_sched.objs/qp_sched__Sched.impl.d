lib/sched/sched.ml: Array List Qp_util Queue
