lib/sched/reduction.mli: Qp_graph Qp_quorum Sched
