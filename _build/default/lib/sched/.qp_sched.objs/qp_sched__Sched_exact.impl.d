lib/sched/sched_exact.ml: Array List Sched
