(* dp.(mask) = least weighted completion time of scheduling exactly the
   jobs in [mask] first (in some precedence-feasible internal order).
   Transition: append job [j] whose predecessors all lie in [mask];
   its completion time is the total processing time of [mask + j]. *)

let solve (t : Sched.t) =
  if t.n > 20 then invalid_arg "Sched_exact.solve: n <= 20 required";
  let n = t.n in
  let size = 1 lsl n in
  let pred_mask = Array.make n 0 in
  List.iter (fun (a, b) -> pred_mask.(b) <- pred_mask.(b) lor (1 lsl a)) t.prec;
  let total_time = Array.make size 0. in
  for mask = 1 to size - 1 do
    let j = ref 0 in
    while mask land (1 lsl !j) = 0 do
      incr j
    done;
    total_time.(mask) <- total_time.(mask lxor (1 lsl !j)) +. t.time.(!j)
  done;
  let dp = Array.make size infinity in
  let choice = Array.make size (-1) in
  dp.(0) <- 0.;
  for mask = 0 to size - 1 do
    if dp.(mask) < infinity then
      for j = 0 to n - 1 do
        let bit = 1 lsl j in
        if mask land bit = 0 && pred_mask.(j) land mask = pred_mask.(j) then begin
          let mask' = mask lor bit in
          let completion = total_time.(mask) +. t.time.(j) in
          let cost = dp.(mask) +. (t.weight.(j) *. completion) in
          if cost < dp.(mask') then begin
            dp.(mask') <- cost;
            choice.(mask') <- j
          end
        end
      done
  done;
  let order = Array.make n (-1) in
  let mask = ref (size - 1) in
  for pos = n - 1 downto 0 do
    let j = choice.(!mask) in
    assert (j >= 0);
    order.(pos) <- j;
    mask := !mask lxor (1 lsl j)
  done;
  (dp.(size - 1), order)

let brute_force (t : Sched.t) =
  if t.n > 8 then invalid_arg "Sched_exact.brute_force: n <= 8 required";
  let best = ref infinity in
  let order = Array.init t.n (fun i -> i) in
  let rec permute k =
    if k = t.n then begin
      if Sched.is_feasible t order then begin
        let c = Sched.cost t order in
        if c < !best then best := c
      end
    end
    else
      for i = k to t.n - 1 do
        let tmp = order.(k) in
        order.(k) <- order.(i);
        order.(i) <- tmp;
        permute (k + 1);
        let tmp = order.(k) in
        order.(k) <- order.(i);
        order.(i) <- tmp
      done
  in
  permute 0;
  !best
