module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Graph = Qp_graph.Graph

type t = {
  sched : Sched.t;
  system : Quorum.system;
  strategy : Strategy.t;
  graph : Graph.t;
  capacities : float array;
  v0 : int;
  epsilon : float;
  n_unit_time : int;
  n_unit_weight : int;
  element_of_job : int array;
}

let hub_element _ = 0

let make (sched : Sched.t) =
  if not (Sched.is_woeginger_form sched) then
    invalid_arg "Reduction.make: instance not in Woeginger form";
  let n = sched.Sched.n in
  let n_unit_time =
    Array.fold_left (fun acc t -> if t = 1. then acc + 1 else acc) 0 sched.Sched.time
  in
  let n_unit_weight = n - n_unit_time in
  for j = 0 to n - 1 do
    let is_unit_time = sched.Sched.time.(j) = 1. in
    if is_unit_time <> (j < n_unit_time) then
      invalid_arg "Reduction.make: unit-time jobs must precede unit-weight jobs"
  done;
  if n_unit_time = 0 || n_unit_weight = 0 then
    invalid_arg "Reduction.make: need jobs of both types";
  (* Elements: e_0 = 0; unit-time job a -> element a + 1. *)
  let element_of_job =
    Array.init n (fun j -> if j < n_unit_time then j + 1 else -1)
  in
  let universe = n_unit_time + 1 in
  (* Type-1 quorums: one per unit-weight job b. *)
  let type1 =
    Array.init n_unit_weight (fun k ->
        let b = n_unit_time + k in
        let preds = Sched.predecessors sched b in
        Array.of_list (0 :: List.map (fun a -> element_of_job.(a)) preds))
  in
  (* Type-2 quorums: {u, e_0} for each non-hub element. *)
  let type2 = Array.init n_unit_time (fun i -> [| 0; i + 1 |]) in
  let system = Quorum.make ~universe (Array.append type1 type2) in
  (* epsilon below both feasibility thresholds of the proof:
     eps < (1-eps)/(n-m) and the capacity inequality
     eps + (1-eps)/(n-m) <= 2(1-eps)/(n-m) - eps. *)
  let nm = float_of_int n_unit_time in
  let epsilon = 1. /. ((2. *. nm) +. 2.) in
  let m = float_of_int n_unit_weight in
  let strategy =
    Array.init (n_unit_weight + n_unit_time) (fun i ->
        if i < n_unit_weight then epsilon /. m else (1. -. epsilon) /. nm)
  in
  Strategy.validate system strategy;
  let graph = Qp_graph.Generators.path (n_unit_time + 1) in
  let capacities =
    Array.init (n_unit_time + 1) (fun v ->
        if v = 0 then 1. else (2. *. (1. -. epsilon) /. nm) -. epsilon)
  in
  {
    sched;
    system;
    strategy;
    graph;
    capacities;
    v0 = 0;
    epsilon;
    n_unit_time;
    n_unit_weight;
    element_of_job;
  }

let series_sum k = float_of_int (k * (k + 1)) /. 2.

let delay_of_cost r cost =
  let m = float_of_int r.n_unit_weight in
  let nm = float_of_int r.n_unit_time in
  (r.epsilon /. m *. cost) +. ((1. -. r.epsilon) /. nm *. series_sum r.n_unit_time)

let cost_of_delay r delay =
  let m = float_of_int r.n_unit_weight in
  let nm = float_of_int r.n_unit_time in
  (delay -. ((1. -. r.epsilon) /. nm *. series_sum r.n_unit_time)) *. m /. r.epsilon

let check_placement r f =
  let universe = r.n_unit_time + 1 in
  if Array.length f <> universe then invalid_arg "Reduction: placement length mismatch";
  if f.(0) <> 0 then invalid_arg "Reduction: e_0 must sit on v_0";
  let seen = Array.make universe false in
  for u = 1 to universe - 1 do
    let v = f.(u) in
    if v < 1 || v > r.n_unit_time then invalid_arg "Reduction: placement out of range";
    if seen.(v) then invalid_arg "Reduction: placement not injective";
    seen.(v) <- true
  done

let schedule_of_placement r f =
  check_placement r f;
  let n = r.sched.Sched.n in
  (* Position (1-based) of each unit-time job on the path. *)
  let pos = Array.make n 0 in
  for a = 0 to r.n_unit_time - 1 do
    pos.(a) <- f.(r.element_of_job.(a))
  done;
  (* Unit-time jobs sorted by position; unit-weight jobs inserted as
     soon as their predecessors are done. *)
  let unit_time_by_pos =
    List.sort
      (fun a b -> compare pos.(a) pos.(b))
      (List.init r.n_unit_time (fun a -> a))
  in
  let ready_at b =
    List.fold_left (fun acc a -> Stdlib.max acc pos.(a)) 0 (Sched.predecessors r.sched b)
  in
  let weight_jobs =
    List.sort
      (fun b b' -> compare (ready_at b) (ready_at b'))
      (List.init r.n_unit_weight (fun k -> r.n_unit_time + k))
  in
  (* Merge: after the unit-time job at position t, emit all weight jobs
     with ready_at <= t (ready_at 0 jobs come first). *)
  let order = ref [] in
  let remaining = ref weight_jobs in
  let emit_ready threshold =
    let rec go () =
      match !remaining with
      | b :: rest when ready_at b <= threshold ->
          order := b :: !order;
          remaining := rest;
          go ()
      | _ -> ()
    in
    go ()
  in
  emit_ready 0;
  List.iter
    (fun a ->
      order := a :: !order;
      emit_ready pos.(a))
    unit_time_by_pos;
  assert (!remaining = []);
  Array.of_list (List.rev !order)

let delay_of_placement r f =
  check_placement r f;
  let qs = Quorum.quorums r.system in
  let delay = ref 0. in
  Array.iteri
    (fun i q ->
      let d = Array.fold_left (fun acc u -> Stdlib.max acc (float_of_int f.(u))) 0. q in
      delay := !delay +. (r.strategy.(i) *. d))
    qs;
  !delay
