module Maxflow = Qp_assign.Maxflow

let max_weight_ideal (t : Sched.t) ~among ~weights =
  let jobs = Array.of_list among in
  let k = Array.length jobs in
  if k = 0 then []
  else begin
    let index = Hashtbl.create k in
    Array.iteri (fun i j -> Hashtbl.replace index j i) jobs;
    (* Nodes: 0 = source, 1..k = jobs, k+1 = sink. *)
    let net = Maxflow.create (k + 2) in
    let source = 0 and sink = k + 1 in
    Array.iteri
      (fun i j ->
        let g = weights j in
        if g > 0. then Maxflow.add_edge net ~src:source ~dst:(1 + i) ~capacity:g
        else if g < 0. then Maxflow.add_edge net ~src:(1 + i) ~dst:sink ~capacity:(-.g))
      jobs;
    (* Membership of j forces membership of each predecessor i: an
       infinite arc j -> i keeps them on the same side of the cut. *)
    List.iter
      (fun (i, j) ->
        match (Hashtbl.find_opt index i, Hashtbl.find_opt index j) with
        | Some ii, Some jj ->
            Maxflow.add_edge net ~src:(1 + jj) ~dst:(1 + ii) ~capacity:infinity
        | _ -> ())
      t.Sched.prec;
    ignore (Maxflow.max_flow net ~source ~sink);
    let side = Maxflow.min_cut_side net ~source in
    let acc = ref [] in
    for i = k - 1 downto 0 do
      if side.(1 + i) then acc := jobs.(i) :: !acc
    done;
    !acc
  end

let totals (t : Sched.t) jobs =
  List.fold_left
    (fun (w, p) j -> (w +. t.Sched.weight.(j), p +. t.Sched.time.(j)))
    (0., 0.) jobs

let max_density_ideal (t : Sched.t) ~among =
  if among = [] then invalid_arg "Sidney.max_density_ideal: empty job set";
  List.iter
    (fun j ->
      if t.Sched.time.(j) <= 0. then
        invalid_arg "Sidney: positive processing times required")
    among;
  (* Dinkelbach: lambda increases strictly; each step solves a
     max-weight closure with weights w_j - lambda t_j. *)
  let rec iterate candidate lambda =
    let s = max_weight_ideal t ~among ~weights:(fun j ->
        t.Sched.weight.(j) -. (lambda *. t.Sched.time.(j)))
    in
    let w, p = totals t s in
    let value = w -. (lambda *. p) in
    if s = [] || value <= 1e-9 then candidate
    else begin
      let lambda' = w /. p in
      if lambda' <= lambda +. 1e-12 then s else iterate s lambda'
    end
  in
  let w0, p0 = totals t among in
  iterate among (w0 /. p0)

let decomposition (t : Sched.t) =
  Array.iter
    (fun time -> if time <= 0. then invalid_arg "Sidney: positive processing times required")
    t.Sched.time;
  let rec peel remaining acc =
    if remaining = [] then List.rev acc
    else begin
      let block = max_density_ideal t ~among:remaining in
      let block_set = List.sort_uniq compare block in
      let rest = List.filter (fun j -> not (List.mem j block_set)) remaining in
      peel rest (block :: acc)
    end
  in
  peel (List.init t.Sched.n (fun j -> j)) []

(* Topological order of an induced sub-DAG. *)
let topo_of_block (t : Sched.t) block =
  let in_block = Hashtbl.create (List.length block) in
  List.iter (fun j -> Hashtbl.replace in_block j ()) block;
  let indeg = Hashtbl.create (List.length block) in
  List.iter (fun j -> Hashtbl.replace indeg j 0) block;
  List.iter
    (fun (a, b) ->
      if Hashtbl.mem in_block a && Hashtbl.mem in_block b then
        Hashtbl.replace indeg b (Hashtbl.find indeg b + 1))
    t.Sched.prec;
  let queue = Queue.create () in
  List.iter (fun j -> if Hashtbl.find indeg j = 0 then Queue.add j queue) block;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    out := j :: !out;
    List.iter
      (fun b ->
        if Hashtbl.mem in_block b then begin
          let d = Hashtbl.find indeg b - 1 in
          Hashtbl.replace indeg b d;
          if d = 0 then Queue.add b queue
        end)
      (Sched.successors t j)
  done;
  List.rev !out

let schedule (t : Sched.t) =
  let blocks = decomposition t in
  Array.of_list (List.concat_map (fun block -> topo_of_block t block) blocks)
