(** LP relaxation (15)–(18) of GAP, solved with the in-repo simplex.

    minimize  sum_{ij} c_ij y_ij
    s.t.      sum_j p_ij y_ij <= T_i   for every machine i
              sum_i y_ij = 1           for every job j
              y_ij >= 0, y_ij = 0 on forbidden pairs. *)

type fractional = {
  y : float array array; (* machine -> job -> fraction *)
  lp_cost : float;
}

val solve : Gap.t -> fractional option
(** [None] when the relaxation is infeasible (budgets too tight). *)

val fractional_loads : Gap.t -> float array array -> float array
(** Per-machine load of a fractional solution. *)
