type t = {
  n : int;
  mutable dst : int array;
  mutable cap : float array;
  mutable n_edges : int;
  adj : int list array;
}

let eps = 1e-11

let create n =
  if n <= 0 then invalid_arg "Maxflow.create: n must be positive";
  { n; dst = Array.make 16 0; cap = Array.make 16 0.; n_edges = 0; adj = Array.make n [] }

let grow t =
  let c = Array.length t.dst in
  let dst = Array.make (2 * c) 0 in
  let cap = Array.make (2 * c) 0. in
  Array.blit t.dst 0 dst 0 t.n_edges;
  Array.blit t.cap 0 cap 0 t.n_edges;
  t.dst <- dst;
  t.cap <- cap

let push_edge t d c =
  if t.n_edges = Array.length t.dst then grow t;
  t.dst.(t.n_edges) <- d;
  t.cap.(t.n_edges) <- c;
  t.n_edges <- t.n_edges + 1

let add_edge t ~src ~dst ~capacity =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: endpoint out of range";
  if capacity < 0. then invalid_arg "Maxflow.add_edge: negative capacity";
  let idx = t.n_edges in
  push_edge t dst capacity;
  push_edge t src 0.;
  t.adj.(src) <- idx :: t.adj.(src);
  t.adj.(dst) <- (idx + 1) :: t.adj.(dst)

(* BFS level graph. *)
let levels t source =
  let level = Array.make t.n (-1) in
  let q = Queue.create () in
  level.(source) <- 0;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun e ->
        let w = t.dst.(e) in
        if t.cap.(e) > eps && level.(w) < 0 then begin
          level.(w) <- level.(v) + 1;
          Queue.add w q
        end)
      t.adj.(v)
  done;
  level

let max_flow t ~source ~sink =
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n || source = sink then
    invalid_arg "Maxflow.max_flow: bad endpoints";
  let total = ref 0. in
  let continue_ = ref true in
  while !continue_ do
    let level = levels t source in
    if level.(sink) < 0 then continue_ := false
    else begin
      (* Iterators over remaining admissible arcs per node. *)
      let iters = Array.map (fun l -> ref l) t.adj in
      let rec dfs v pushed =
        if v = sink then pushed
        else begin
          let rec advance () =
            match !(iters.(v)) with
            | [] -> 0.
            | e :: rest ->
                let w = t.dst.(e) in
                if t.cap.(e) > eps && level.(w) = level.(v) + 1 then begin
                  let sent = dfs w (Float.min pushed t.cap.(e)) in
                  if sent > eps then begin
                    t.cap.(e) <- t.cap.(e) -. sent;
                    t.cap.(e lxor 1) <- t.cap.(e lxor 1) +. sent;
                    sent
                  end
                  else begin
                    iters.(v) := rest;
                    advance ()
                  end
                end
                else begin
                  iters.(v) := rest;
                  advance ()
                end
          in
          advance ()
        end
      in
      let rec pump () =
        let sent = dfs source infinity in
        if sent > eps then begin
          total := !total +. sent;
          pump ()
        end
      in
      pump ()
    end
  done;
  !total

let min_cut_side t ~source =
  let level = levels t source in
  Array.map (fun l -> l >= 0) level
