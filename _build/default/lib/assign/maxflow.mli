(** Max-flow / min-cut with float capacities (Dinic's algorithm).

    Complements {!Mcmf} (integer capacities, costs) for the places
    that need real-valued capacities and the CUT itself — notably the
    max-weight-closure step of the Sidney decomposition in
    [Qp_sched.Sidney]. *)

type t

val create : int -> t
val add_edge : t -> src:int -> dst:int -> capacity:float -> unit
(** Directed arc; @raise Invalid_argument on negative capacity or bad
    endpoints. [infinity] capacities are allowed. *)

val max_flow : t -> source:int -> sink:int -> float
(** Runs Dinic to completion (mutates the network). *)

val min_cut_side : t -> source:int -> bool array
(** AFTER {!max_flow}: the source side of a minimum cut (vertices
    reachable in the residual network). *)
