type t = {
  n_jobs : int;
  n_machines : int;
  cost : float array array;
  load : float array array;
  budget : float array;
  allowed : bool array array;
}

type assignment = int array

let make ~cost ~load ~budget ?allowed () =
  let n_machines = Array.length cost in
  if n_machines = 0 then invalid_arg "Gap.make: no machines";
  let n_jobs = Array.length cost.(0) in
  if n_jobs = 0 then invalid_arg "Gap.make: no jobs";
  let check_shape name m =
    if Array.length m <> n_machines then invalid_arg ("Gap.make: bad shape for " ^ name);
    Array.iter
      (fun row ->
        if Array.length row <> n_jobs then invalid_arg ("Gap.make: bad shape for " ^ name))
      m
  in
  check_shape "cost" cost;
  check_shape "load" load;
  if Array.length budget <> n_machines then invalid_arg "Gap.make: bad budget length";
  Array.iter (fun b -> if b < 0. then invalid_arg "Gap.make: negative budget") budget;
  let allowed =
    match allowed with
    | Some a ->
        check_shape "allowed" a;
        a
    | None -> Array.make_matrix n_machines n_jobs true
  in
  for i = 0 to n_machines - 1 do
    for j = 0 to n_jobs - 1 do
      if allowed.(i).(j) then begin
        if not (Float.is_finite cost.(i).(j)) then
          invalid_arg "Gap.make: non-finite cost on allowed pair";
        if (not (Float.is_finite load.(i).(j))) || load.(i).(j) < 0. then
          invalid_arg "Gap.make: bad load on allowed pair"
      end
    done
  done;
  { n_jobs; n_machines; cost; load; budget; allowed }

let assignment_cost t a =
  if Array.length a <> t.n_jobs then invalid_arg "Gap.assignment_cost: bad length";
  let acc = ref 0. in
  Array.iteri (fun j i -> acc := !acc +. t.cost.(i).(j)) a;
  !acc

let machine_loads t a =
  let loads = Array.make t.n_machines 0. in
  Array.iteri (fun j i -> loads.(i) <- loads.(i) +. t.load.(i).(j)) a;
  loads

let max_job_load t i =
  let best = ref 0. in
  for j = 0 to t.n_jobs - 1 do
    if t.allowed.(i).(j) && t.load.(i).(j) > !best then best := t.load.(i).(j)
  done;
  !best

let respects ?(slack = 1.) t a =
  let loads = machine_loads t a in
  let ok = ref true in
  Array.iteri (fun j i -> if not t.allowed.(i).(j) then ok := false) a;
  Array.iteri
    (fun i l -> if not (Qp_util.Floatx.leq l (slack *. t.budget.(i))) then ok := false)
    loads;
  !ok

let pp ppf t = Format.fprintf ppf "gap(jobs=%d, machines=%d)" t.n_jobs t.n_machines
