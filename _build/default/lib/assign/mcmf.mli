(** Min-cost max-flow (successive shortest paths with potentials).

    Integer capacities, float costs (possibly negative — handled by a
    Bellman–Ford bootstrap of the potentials). Used to extract the
    integral matching inside the Shmoys–Tardos GAP rounding, and as an
    exact oracle for unit-load assignment problems in tests and
    experiments. *)

type t

val create : int -> t
(** [create n] is a flow network on [n] nodes and no arcs. *)

val add_edge : t -> src:int -> dst:int -> capacity:int -> cost:float -> unit
(** Adds a directed arc (and its zero-capacity residual).
    @raise Invalid_argument on negative capacity or bad endpoints. *)

val min_cost_flow : t -> source:int -> sink:int -> ?max_flow:int -> unit -> int * float
(** [min_cost_flow t ~source ~sink ()] pushes flow along successive
    shortest (reduced-cost) paths until the sink is saturated or
    [max_flow] is reached; returns [(flow_value, total_cost)]. The
    network is consumed (capacities mutate); call on a fresh [t]. *)

val flow_on_edges : t -> (int * int * int * float) list
(** After {!min_cost_flow}: [(src, dst, flow, cost)] for every original
    arc carrying positive flow. *)
