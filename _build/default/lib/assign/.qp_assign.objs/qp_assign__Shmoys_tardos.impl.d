lib/assign/shmoys_tardos.ml: Array Float Gap Gap_lp List Mcmf Qp_util
