lib/assign/mcmf.ml: Array List
