lib/assign/gap.mli: Format
