lib/assign/gap.ml: Array Float Format Qp_util
