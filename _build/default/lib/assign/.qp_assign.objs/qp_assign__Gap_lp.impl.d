lib/assign/gap_lp.ml: Array Gap Qp_lp
