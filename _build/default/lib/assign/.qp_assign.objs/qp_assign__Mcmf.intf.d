lib/assign/mcmf.mli:
