lib/assign/shmoys_tardos.mli: Gap
