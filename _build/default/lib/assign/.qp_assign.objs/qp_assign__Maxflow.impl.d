lib/assign/maxflow.ml: Array Float List Queue
