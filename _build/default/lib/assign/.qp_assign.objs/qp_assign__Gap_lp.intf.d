lib/assign/gap_lp.mli: Gap
