lib/assign/maxflow.mli:
