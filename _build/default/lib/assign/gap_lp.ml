module Lp = Qp_lp.Lp
module Simplex = Qp_lp.Simplex

type fractional = { y : float array array; lp_cost : float }

let solve (g : Gap.t) =
  let nm = g.n_machines and nj = g.n_jobs in
  (* Variable numbering: y_{i,j} -> i * nj + j. Forbidden pairs are
     pinned to zero with an explicit [y <= 0] row. *)
  let var i j = (i * nj) + j in
  let lp = Lp.create (nm * nj) in
  for i = 0 to nm - 1 do
    for j = 0 to nj - 1 do
      if g.allowed.(i).(j) then Lp.set_objective lp (var i j) g.cost.(i).(j)
      else
        (* Pin forbidden pairs to zero. *)
        Lp.add_constraint lp [ (var i j, 1.) ] Lp.Le 0.
    done
  done;
  for j = 0 to nj - 1 do
    let terms = ref [] in
    for i = 0 to nm - 1 do
      if g.allowed.(i).(j) then terms := (var i j, 1.) :: !terms
    done;
    Lp.add_constraint lp !terms Lp.Eq 1.
  done;
  for i = 0 to nm - 1 do
    let terms = ref [] in
    for j = 0 to nj - 1 do
      if g.allowed.(i).(j) && g.load.(i).(j) <> 0. then
        terms := (var i j, g.load.(i).(j)) :: !terms
    done;
    if !terms <> [] then Lp.add_constraint lp !terms Lp.Le g.budget.(i)
  done;
  match Simplex.solve lp with
  | Simplex.Infeasible -> None
  | Simplex.Unbounded ->
      (* Impossible: feasible region is inside the unit box. *)
      assert false
  | Simplex.Optimal { x; objective } ->
      let y = Array.make_matrix nm nj 0. in
      for i = 0 to nm - 1 do
        for j = 0 to nj - 1 do
          let v = x.(var i j) in
          y.(i).(j) <- (if v < 1e-11 then 0. else v)
        done
      done;
      Some { y; lp_cost = objective }

let fractional_loads (g : Gap.t) y =
  Array.init g.n_machines (fun i ->
      let acc = ref 0. in
      for j = 0 to g.n_jobs - 1 do
        if y.(i).(j) > 0. then acc := !acc +. (g.load.(i).(j) *. y.(i).(j))
      done;
      !acc)
