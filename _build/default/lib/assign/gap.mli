(** Generalized Assignment Problem instances (Definition 3.10).

    Jobs [j] are assigned to machines [i]; assigning job [j] to
    machine [i] costs [cost i j] and adds [load i j] to machine [i],
    whose budget is [budget i]. Pairs can be forbidden (the paper's
    filtering step forbids far-away nodes by setting [p_tu = infinity];
    we represent that explicitly). *)

type t = {
  n_jobs : int;
  n_machines : int;
  cost : float array array; (* machine -> job -> cost *)
  load : float array array; (* machine -> job -> load *)
  budget : float array; (* machine -> T_i *)
  allowed : bool array array; (* machine -> job -> permitted? *)
}

val make :
  cost:float array array ->
  load:float array array ->
  budget:float array ->
  ?allowed:bool array array ->
  unit ->
  t
(** Validates shapes, non-negativity of loads/budgets, finiteness of
    allowed entries. By default all pairs are allowed. *)

type assignment = int array
(** [assignment.(j)] = machine of job [j]. *)

val assignment_cost : t -> assignment -> float
val machine_loads : t -> assignment -> float array

val max_job_load : t -> int -> float
(** [max_job_load t i] = max load over allowed jobs on machine [i]
    (the [pmax_i] of Theorem 3.11); 0 when nothing is allowed. *)

val respects : ?slack:float -> t -> assignment -> bool
(** [respects ~slack t a]: every machine load is at most
    [slack * budget] (default slack 1) and every assigned pair is
    allowed. *)

val pp : Format.formatter -> t -> unit
