module Metric = Qp_graph.Metric

type expansion = {
  metric : Metric.t;
  capacities : float array;
  original_of_copy : int array;
}

let expand metric caps ~load ?(max_copies = 64) () =
  if load <= 0. then invalid_arg "Capacity.expand: load must be positive";
  let n = Metric.size metric in
  if Array.length caps <> n then invalid_arg "Capacity.expand: capacity length mismatch";
  let copies = ref [] in
  for v = n - 1 downto 0 do
    let k = int_of_float (Float.floor ((caps.(v) +. 1e-12) /. load)) in
    let k = Stdlib.min k max_copies in
    for _ = 1 to k do
      copies := v :: !copies
    done
  done;
  let original_of_copy = Array.of_list !copies in
  let m = Array.length original_of_copy in
  if m = 0 then invalid_arg "Capacity.expand: no node can hold any element";
  let d =
    Array.init m (fun i ->
        Array.init m (fun j ->
            Metric.dist metric original_of_copy.(i) original_of_copy.(j)))
  in
  {
    metric = Metric.of_matrix d;
    capacities = Array.make m load;
    original_of_copy;
  }

let project e f = Array.map (fun copy -> e.original_of_copy.(copy)) f
