(** Capacity preprocessing of Section 4.1.

    When every element carries the same load [L] (uniform strategies
    on symmetric systems), general capacities reduce to the unit case
    by suppressing nodes with [cap < L] and duplicating a node with
    [cap >= kL] into [k] co-located copies — "greedily packing amounts
    of load(u) into nodes". The expansion maps an instance over the
    original metric to one over the expanded metric (copies at
    distance 0 from each other) plus a projection back. *)

type expansion = {
  metric : Qp_graph.Metric.t; (* expanded metric *)
  capacities : float array; (* L at every expanded node *)
  original_of_copy : int array; (* expanded node -> original node *)
}

val expand : Qp_graph.Metric.t -> float array -> load:float -> ?max_copies:int -> unit -> expansion
(** [expand metric caps ~load ()]: each original node [v] yields
    [floor (cap v / load)] copies (bounded by [max_copies], default
    64, to keep expansions finite on huge-capacity nodes).
    @raise Invalid_argument if [load <= 0] or no node can hold any
    element. *)

val project : expansion -> Placement.t -> Placement.t
(** Maps a placement on the expanded metric back to original nodes. *)
