(** Plain-text (de)serialization of problem instances and placements.

    A line-oriented, versioned format so instances can be saved from
    the CLI, shipped in bug reports, and reloaded bit-exactly:

    {v
    qplace-instance v1
    nodes <n>
    metric
    <n rows of n floats>
    capacities
    <n floats>
    universe <u>
    quorums <m>
    q <sorted element ids>          (m lines)
    strategy
    <m floats>
    rates none | rates
    [<n floats>]
    end
    v}

    Floats are printed with ["%.17g"] so round-trips are exact. *)

val problem_to_string : Problem.qpp -> string

val problem_of_string : string -> Problem.qpp
(** @raise Failure with a line-numbered message on malformed input
    (also when the embedded system/strategy fails validation). *)

val placement_to_string : Placement.t -> string
(** Space-separated node ids on one line. *)

val placement_of_string : string -> Placement.t
(** @raise Failure on non-integer tokens. *)

val save_problem : string -> Problem.qpp -> unit
val load_problem : string -> Problem.qpp
