type t = int array

let validate (p : Problem.qpp) f =
  let n = Problem.n_nodes p in
  if Array.length f <> Problem.n_elements p then
    invalid_arg "Placement.validate: length must equal universe size";
  Array.iter
    (fun v -> if v < 0 || v >= n then invalid_arg "Placement.validate: node out of range")
    f

let node_loads (p : Problem.qpp) f =
  validate p f;
  let loads = Problem.element_loads p in
  let out = Array.make (Problem.n_nodes p) 0. in
  Array.iteri (fun u v -> out.(v) <- out.(v) +. loads.(u)) f;
  out

let respects_capacities ?(slack = 1.) (p : Problem.qpp) f =
  let loads = node_loads p f in
  let ok = ref true in
  Array.iteri
    (fun v l -> if not (Qp_util.Floatx.leq l (slack *. p.Problem.capacities.(v))) then ok := false)
    loads;
  !ok

let max_violation (p : Problem.qpp) f =
  let loads = node_loads p f in
  let worst = ref 0. in
  Array.iteri
    (fun v l ->
      if l > 1e-12 then begin
        let cap = p.Problem.capacities.(v) in
        let ratio = if cap > 0. then l /. cap else infinity in
        if ratio > !worst then worst := ratio
      end)
    loads;
  !worst

let used_nodes f = List.sort_uniq compare (Array.to_list f)

let pp ppf f =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (Array.to_list (Array.map string_of_int f)))
