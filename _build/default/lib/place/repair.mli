(** Placement repair under node churn.

    When nodes leave (crash, decommission), a deployed placement must
    be patched without re-shuffling every replica: only elements
    hosted by departed nodes move. This module implements the minimal
    greedy repair — each displaced element goes to the nearest
    surviving node with residual capacity (nearest in average distance
    to the clients, matching the total-delay objective; max-delay
    degradation is reported, not re-optimized) — and quantifies the
    degradation against a from-scratch re-solve. *)

type repair = {
  placement : Placement.t; (* patched placement, avoids dead nodes *)
  moved : int list; (* elements that changed host *)
  delay_before : float; (* Avg max-delay of the original placement *)
  delay_after : float; (* ... of the patched one *)
}

val repair : Problem.qpp -> Placement.t -> dead:int list -> repair option
(** [None] when the surviving capacity cannot absorb the displaced
    elements (under exact capacities — callers wanting slack should
    scale the problem's capacities first).
    @raise Invalid_argument if [dead] lists an unknown node.
    Elements on surviving nodes never move; surviving nodes' existing
    loads are accounted before displaced elements are packed. *)

val degradation_vs_resolve : Problem.qpp -> Placement.t -> dead:int list ->
  (float * float) option
(** [(repaired_delay, resolved_delay)]: the patched placement's delay
    next to a full Theorem 1.2 re-solve on the surviving subnetwork
    (same alpha = 2); [None] if either is infeasible. The gap is the
    price of minimal movement. *)
