module Quorum = Qp_quorum.Quorum
module Lp = Qp_lp.Lp
module Simplex = Qp_lp.Simplex

type objective = Max_delay | Total_delay

type result = {
  strategy : Qp_quorum.Strategy.t;
  delay : float;
  input_delay : float;
}

let quorum_weight (p : Problem.qpp) f objective qi =
  let n = Problem.n_nodes p in
  let acc = ref 0. in
  let eval =
    match objective with
    | Max_delay -> Delay.quorum_max_delay
    | Total_delay -> Delay.quorum_total_delay
  in
  (match p.Problem.client_rates with
  | None ->
      for v = 0 to n - 1 do
        acc := !acc +. eval p f v qi
      done;
      acc := !acc /. float_of_int n
  | Some rates ->
      let total = Array.fold_left ( +. ) 0. rates in
      for v = 0 to n - 1 do
        if rates.(v) > 0. then acc := !acc +. (rates.(v) *. eval p f v qi)
      done;
      acc := !acc /. total);
  !acc

let optimize ?(objective = Max_delay) (p : Problem.qpp) f =
  Placement.validate p f;
  let m = Quorum.n_quorums p.Problem.system in
  let n = Problem.n_nodes p in
  let lp = Lp.create m in
  let weights = Array.init m (fun qi -> quorum_weight p f objective qi) in
  Array.iteri (fun qi w -> Lp.set_objective lp qi w) weights;
  Lp.add_constraint lp (List.init m (fun qi -> (qi, 1.))) Lp.Eq 1.;
  (* Node capacity rows: choosing quorum Q puts one access-unit on
     every element of Q, hence |{u in Q : f(u) = v}| units on node v. *)
  for v = 0 to n - 1 do
    let terms = ref [] in
    Array.iteri
      (fun qi q ->
        let count = Array.fold_left (fun c u -> if f.(u) = v then c + 1 else c) 0 q in
        if count > 0 then terms := (qi, float_of_int count) :: !terms)
      (Quorum.quorums p.Problem.system);
    if !terms <> [] then Lp.add_constraint lp !terms Lp.Le p.Problem.capacities.(v)
  done;
  match Simplex.solve lp with
  | Simplex.Infeasible -> None
  | Simplex.Unbounded -> assert false (* simplex-bounded: p lives in the simplex *)
  | Simplex.Optimal { x; objective = delay } ->
      (* Clean tiny numerical noise and renormalize. *)
      let total = Array.fold_left ( +. ) 0. x in
      let strategy = Array.map (fun v -> Float.max 0. v /. total) x in
      let input_delay =
        let acc = ref 0. in
        Array.iteri
          (fun qi pq -> if pq > 0. then acc := !acc +. (pq *. weights.(qi)))
          p.Problem.strategy;
        !acc
      in
      Some { strategy; delay; input_delay }
