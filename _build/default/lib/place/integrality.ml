module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum

type gap_report = {
  n : int;
  lp_value : float;
  integral_opt : float;
  gap : float;
}

let full_quorum_problem metric =
  let n = Metric.size metric in
  let system = Quorum.make ~universe:n [| Array.init n (fun u -> u) |] in
  Problem.make_ssqpp ~metric ~capacities:(Array.make n 1.) ~system ~strategy:[| 1. |]
    ~v0:0

let path_instance ~n ~m =
  if n < 2 then invalid_arg "Integrality.path_instance: n >= 2 required";
  if m < 1. then invalid_arg "Integrality.path_instance: m >= 1 required";
  (* Star metric: spokes at distance 1, one far node at distance m. *)
  let d0 t = if t = 0 then 0. else if t = n - 1 then m else 1. in
  let dist i j =
    if i = j then 0.
    else if i = 0 then d0 j
    else if j = 0 then d0 i
    else d0 i +. d0 j
  in
  let matrix = Array.init n (fun i -> Array.init n (fun j -> dist i j)) in
  full_quorum_problem (Metric.of_matrix matrix)

let figure1_instance k =
  let g = Qp_graph.Generators.integrality_gap_graph k in
  full_quorum_problem (Metric.of_graph g)

let measure (s : Problem.ssqpp) =
  if Quorum.n_quorums s.Problem.system <> 1 then
    invalid_arg "Integrality.measure: single-quorum instances only";
  let n = Metric.size s.Problem.metric in
  let nu = Quorum.universe s.Problem.system in
  (* Integral optimum: the quorum covers all its elements, one per
     usable node, so the best integral delay is the distance of the
     nu-th nearest usable node. *)
  let order = Metric.nodes_by_distance s.Problem.metric s.Problem.v0 in
  let usable =
    List.filter (fun v -> s.Problem.capacities.(v) +. 1e-12 >= 1.) (Array.to_list order)
  in
  if List.length usable < nu then invalid_arg "Integrality.measure: infeasible instance";
  let integral_opt =
    Metric.dist s.Problem.metric s.Problem.v0 (List.nth usable (nu - 1))
  in
  match Lp_formulation.solve s with
  | None -> invalid_arg "Integrality.measure: LP infeasible"
  | Some sol ->
      let lp_value = sol.Lp_formulation.z_star in
      { n; lp_value; integral_opt; gap = integral_opt /. lp_value }
