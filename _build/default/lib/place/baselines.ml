module Metric = Qp_graph.Metric
module Rng = Qp_util.Rng

let residual_fit (p : Problem.qpp) order node_choice =
  let loads = Problem.element_loads p in
  let residual = Array.copy p.Problem.capacities in
  let placement = Array.make (Problem.n_elements p) (-1) in
  let ok = ref true in
  List.iter
    (fun u ->
      if !ok then
        match node_choice ~residual ~load:loads.(u) with
        | Some v ->
            placement.(u) <- v;
            residual.(v) <- residual.(v) -. loads.(u)
        | None -> ok := false)
    order;
  if !ok then Some placement else None

let random rng (p : Problem.qpp) =
  let nu = Problem.n_elements p in
  let n = Problem.n_nodes p in
  let attempt () =
    let order = Array.to_list (Rng.permutation rng nu) in
    residual_fit p order (fun ~residual ~load ->
        let feasible = ref [] in
        for v = 0 to n - 1 do
          if residual.(v) +. 1e-12 >= load then feasible := v :: !feasible
        done;
        match !feasible with
        | [] -> None
        | vs -> Some (List.nth vs (Rng.int rng (List.length vs))))
  in
  let rec go tries = if tries = 0 then None else
      match attempt () with Some f -> Some f | None -> go (tries - 1)
  in
  go 100

let greedy_closest (p : Problem.qpp) v0 =
  let loads = Problem.element_loads p in
  let order =
    List.sort
      (fun a b -> compare loads.(b) loads.(a))
      (List.init (Problem.n_elements p) (fun u -> u))
  in
  let by_distance = Metric.nodes_by_distance p.Problem.metric v0 in
  residual_fit p order (fun ~residual ~load ->
      Array.find_opt (fun v -> residual.(v) +. 1e-12 >= load) by_distance)

let lin_single_node (p : Problem.qpp) =
  let n = Problem.n_nodes p in
  let best = ref 0 in
  let best_cost = ref infinity in
  for v = 0 to n - 1 do
    let c = Metric.average_distance p.Problem.metric v in
    if c < !best_cost then begin
      best_cost := c;
      best := v
    end
  done;
  (!best, Array.make (Problem.n_elements p) !best)

let local_search ?(max_steps = 1000) ~objective (p : Problem.qpp) start =
  Placement.validate p start;
  let nu = Problem.n_elements p in
  let n = Problem.n_nodes p in
  let loads = Problem.element_loads p in
  let f = Array.copy start in
  let node_load = Placement.node_loads p f in
  let current = ref (objective f) in
  let caps = p.Problem.capacities in
  let fits v extra = node_load.(v) +. extra <= caps.(v) +. 1e-9 in
  let improved = ref true in
  let steps = ref 0 in
  while !improved && !steps < max_steps do
    improved := false;
    incr steps;
    (* Single-element moves. *)
    for u = 0 to nu - 1 do
      if not !improved then
        for v = 0 to n - 1 do
          if (not !improved) && v <> f.(u) && fits v loads.(u) then begin
            let old = f.(u) in
            f.(u) <- v;
            let c = objective f in
            if c < !current -. 1e-12 then begin
              current := c;
              node_load.(old) <- node_load.(old) -. loads.(u);
              node_load.(v) <- node_load.(v) +. loads.(u);
              improved := true
            end
            else f.(u) <- old
          end
        done
    done;
    (* Pairwise swaps. *)
    for u = 0 to nu - 1 do
      if not !improved then
        for u' = u + 1 to nu - 1 do
          if (not !improved) && f.(u) <> f.(u') then begin
            let vu = f.(u) and vu' = f.(u') in
            let load_u_after = node_load.(vu) -. loads.(u) +. loads.(u') in
            let load_u'_after = node_load.(vu') -. loads.(u') +. loads.(u) in
            if load_u_after <= caps.(vu) +. 1e-9 && load_u'_after <= caps.(vu') +. 1e-9
            then begin
              f.(u) <- vu';
              f.(u') <- vu;
              let c = objective f in
              if c < !current -. 1e-12 then begin
                current := c;
                node_load.(vu) <- load_u_after;
                node_load.(vu') <- load_u'_after;
                improved := true
              end
              else begin
                f.(u) <- vu;
                f.(u') <- vu'
              end
            end
          end
        done
    done
  done;
  f
