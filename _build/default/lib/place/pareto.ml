type point = {
  alpha : float;
  delay : float;
  load_violation : float;
  placement : Placement.t;
}

let dominates a b =
  a.delay <= b.delay +. 1e-12
  && a.load_violation <= b.load_violation +. 1e-12
  && (a.delay < b.delay -. 1e-12 || a.load_violation < b.load_violation -. 1e-12)

let frontier ?(alphas = [ 1.25; 1.5; 2.; 3.; 4.; 6.; 8. ]) ?candidates (p : Problem.qpp) =
  let points =
    List.filter_map
      (fun alpha ->
        match Qpp_solver.solve ~alpha ?candidates p with
        | None -> None
        | Some r ->
            Some
              {
                alpha;
                delay = r.Qpp_solver.objective;
                load_violation = r.Qpp_solver.load_violation;
                placement = r.Qpp_solver.placement;
              })
      alphas
  in
  let non_dominated =
    List.filter
      (fun pt -> not (List.exists (fun other -> dominates other pt) points))
      points
  in
  (* Deduplicate identical coordinate pairs, keep smallest alpha. *)
  let sorted =
    List.sort
      (fun a b ->
        let c = compare a.delay b.delay in
        if c <> 0 then c else compare a.load_violation b.load_violation)
      non_dominated
  in
  let rec dedup = function
    | a :: b :: rest
      when Float.abs (a.delay -. b.delay) < 1e-12
           && Float.abs (a.load_violation -. b.load_violation) < 1e-12 ->
        dedup (a :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted
