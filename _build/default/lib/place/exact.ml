module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy

let ssqpp_uniform_dp (s : Problem.ssqpp) =
  let nu = Quorum.universe s.Problem.system in
  if nu > 20 then invalid_arg "Exact.ssqpp_uniform_dp: |U| <= 20 required";
  let loads = Strategy.loads s.Problem.system s.Problem.strategy in
  let load = loads.(0) in
  if not (Array.for_all (fun l -> Qp_util.Floatx.approx l load) loads) then
    invalid_arg "Exact.ssqpp_uniform_dp: element loads are not uniform";
  if load <= 0. then invalid_arg "Exact.ssqpp_uniform_dp: zero element load";
  (* Eligible nodes hold exactly one element each. *)
  let order = Metric.nodes_by_distance s.Problem.metric s.Problem.v0 in
  let eligible =
    Array.of_list
      (List.filter
         (fun v ->
           let cap = s.Problem.capacities.(v) in
           if cap >= (2. *. load) -. 1e-12 then
             invalid_arg
               "Exact.ssqpp_uniform_dp: capacity admits two elements (expand first)";
           cap +. 1e-12 >= load)
         (Array.to_list order))
  in
  if Array.length eligible < nu then None
  else begin
    (* Only the nu closest eligible nodes matter. *)
    let nodes = Array.sub eligible 0 nu in
    let dist = Array.map (fun v -> Metric.dist s.Problem.metric s.Problem.v0 v) nodes in
    (* For each element, quorums containing it as (index, mask of other
       elements). *)
    let quorums = Quorum.quorums s.Problem.system in
    let per_elem = Array.make nu [] in
    Array.iteri
      (fun qi q ->
        let mask = Array.fold_left (fun m u -> m lor (1 lsl u)) 0 q in
        Array.iter (fun u -> per_elem.(u) <- (qi, mask lxor (1 lsl u)) :: per_elem.(u)) q)
      quorums;
    let size = 1 lsl nu in
    let dp = Array.make size infinity in
    let choice = Array.make size (-1) in
    dp.(0) <- 0.;
    let popcount m =
      let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
      go m 0
    in
    for mask = 0 to size - 1 do
      if dp.(mask) < infinity then begin
        let pos = popcount mask in
        (* Element placed next sits at distance dist.(pos). *)
        for u = 0 to nu - 1 do
          let bit = 1 lsl u in
          if mask land bit = 0 then begin
            let mask' = mask lor bit in
            (* Quorums completing now: contain u, others within mask. *)
            let finishing = ref 0. in
            List.iter
              (fun (qi, others) ->
                if others land mask = others then
                  finishing := !finishing +. s.Problem.strategy.(qi))
              per_elem.(u);
            let cost = dp.(mask) +. (!finishing *. dist.(pos)) in
            if cost < dp.(mask') -. 1e-15 then begin
              dp.(mask') <- cost;
              choice.(mask') <- u
            end
          end
        done
      end
    done;
    (* Reconstruct: elements in placement order onto nodes 0..nu-1. *)
    let placement = Array.make nu (-1) in
    let mask = ref (size - 1) in
    for pos = nu - 1 downto 0 do
      let u = choice.(!mask) in
      assert (u >= 0);
      placement.(u) <- nodes.(pos);
      mask := !mask lxor (1 lsl u)
    done;
    Some (dp.(size - 1), placement)
  end

let enumerate_placements (p : Problem.qpp) objective =
  let n = Problem.n_nodes p in
  let nu = Problem.n_elements p in
  let count = (float_of_int n) ** (float_of_int nu) in
  if count > 2_000_000. then
    invalid_arg "Exact: instance too large for brute force";
  let loads = Problem.element_loads p in
  let best = ref infinity in
  let best_f = ref None in
  let f = Array.make nu 0 in
  let node_load = Array.make n 0. in
  (* Depth-first over assignments with incremental load pruning. *)
  let rec go u =
    if u = nu then begin
      let obj = objective f in
      if obj < !best then begin
        best := obj;
        best_f := Some (Array.copy f)
      end
    end
    else
      for v = 0 to n - 1 do
        if node_load.(v) +. loads.(u) <= p.Problem.capacities.(v) +. 1e-9 then begin
          node_load.(v) <- node_load.(v) +. loads.(u);
          f.(u) <- v;
          go (u + 1);
          node_load.(v) <- node_load.(v) -. loads.(u)
        end
      done
  in
  go 0;
  match !best_f with None -> None | Some f -> Some (!best, f)

let ssqpp_brute_force (s : Problem.ssqpp) =
  let p = Problem.qpp_of_ssqpp s in
  enumerate_placements p (fun f -> Delay.client_max_delay p f s.Problem.v0)

let qpp_brute_force (p : Problem.qpp) =
  enumerate_placements p (fun f -> Delay.avg_max_delay p f)

let total_delay_brute_force (p : Problem.qpp) =
  enumerate_placements p (fun f -> Delay.avg_total_delay p f)
