(** The "partial quorum deployment problem" of Gilbert and Malewicz
    (OPODIS'04), discussed in the paper's Related Work: inputs are
    restricted to [|Q| = |V| = |U|], the placement [f : U -> V] must
    be a bijection, and every client [v] commits to a single distinct
    quorum via a bijection [q : V -> Q]; the objective is the average
    total delay [Avg_v gamma_f(v, Q_{q(v)})].

    This module implements an alternating-assignment solver: with [f]
    fixed, the optimal [q] is a min-cost bipartite matching (clients x
    quorums, cost [gamma_f(v, Q)]); with [q] fixed, the optimal [f] is
    again a matching (elements x nodes, cost
    [sum over clients v whose quorum contains u of d(v, x)]). Each
    half-step is solved exactly with {!Qp_assign.Mcmf}, so the
    iteration is monotone and terminates in a joint local optimum
    (each map optimal given the other). A brute-force oracle covers
    tiny instances. *)

type deployment = {
  placement : Placement.t; (* bijection U -> V *)
  quorum_of_client : int array; (* bijection V -> quorum index *)
  cost : float; (* Avg_v gamma_f(v, Q_q(v)) *)
  rounds : int; (* alternation rounds until fixpoint *)
}

val cost_of : Problem.qpp -> Placement.t -> int array -> float
(** Objective of an explicit (f, q) pair. *)

val solve : ?max_rounds:int -> Problem.qpp -> deployment
(** @raise Invalid_argument unless [|Q| = |V| = |U|]. Capacities are
    ignored (the GM formulation has none; the bijection IS the load
    constraint). Default [max_rounds = 50]. *)

val brute_force : Problem.qpp -> float
(** Exact optimum over all pairs of bijections; guarded to [n <= 5]. *)
