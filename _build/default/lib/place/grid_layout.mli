(** Optimal single-source layout for the Grid quorum system
    (Section 4.1, proved optimal in Theorem B.1 / Appendix B).

    Let [tau_1 >= tau_2 >= ... >= tau_{k^2}] be the distances from
    [v0] to the [k^2] usable nodes closest to it, in decreasing order.
    The concentric strategy fills a [k x k] matrix [M] with
    [tau_1..tau_{l^2}] occupying the top-left [l x l] square for every
    [l]: the next [l] values extend column [l], the following [l+1]
    complete row [l]. Cell [(i,j)] of [M] names the node hosting grid
    element [(i,j)]. *)

type layout = {
  placement : Placement.t;
  delay : float; (* Delta_f(v0) *)
  matrix_ranks : int array array; (* cell -> 1-based tau index (Fig. 2 view) *)
}

val rank_of_cell : int -> int -> int -> int
(** [rank_of_cell k i j]: 1-based index of the tau value the
    concentric strategy puts in cell [(i, j)]; pure function of the
    pattern (exposed for tests):
    with [l = max i j], column cells ([j = l > i]) get [l^2 + i + 1]
    and row cells ([i = l]) get [l^2 + l + j + 1]. *)

val place : Problem.ssqpp -> layout option
(** Requires the system to be a Grid ({!Qp_quorum.Grid_qs}) under its
    uniform strategy and capacities in the unit regime
    ([load <= cap < 2 load] on usable nodes — use {!Capacity.expand}
    first otherwise). [None] when fewer than [k^2] usable nodes.
    @raise Invalid_argument on a non-grid system or non-uniform
    strategy. *)

val predicted_delay : float array -> int -> float
(** [predicted_delay tau_desc k]: closed-form cost of the concentric
    layout — the max-rank in quorum [(i,j)] is
    [min (rank_of_cell i 0) (rank_of_cell 0 j)] — so the delay is
    computable from the sorted distances alone. Cross-checked against
    the placement evaluation in tests. *)

val place_with_expansion : Problem.ssqpp -> (layout * Placement.t) option
(** General capacities: {!Capacity.expand}, place on the expanded
    metric, and also return the projection back to original nodes. *)
