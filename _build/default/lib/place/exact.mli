(** Exact optima for small instances — the oracles behind the
    approximation-ratio columns of the experiment tables.

    The subset DP applies to the "uniform" case where every element
    has the same load and every node's capacity admits at most one
    element (after {!Capacity.expand} preprocessing this covers the
    Section 4 setting). A swap argument shows an optimal solution uses
    only the [|U|] nodes closest to the source, one element each, so
    the DP scans nodes in distance order and decides which element
    each receives. *)

val ssqpp_uniform_dp : Problem.ssqpp -> (float * Placement.t) option
(** Exact optimum of SSQPP when all element loads are equal and every
    node with [cap >= load] holds at most one element
    ([load <= cap < 2 load] — checked). [None] when fewer eligible
    nodes than elements exist. @raise Invalid_argument when the
    uniformity preconditions fail or [|U| > 20]. *)

val ssqpp_brute_force : Problem.ssqpp -> (float * Placement.t) option
(** General capacities/loads by exhaustive search over all [n^|U|]
    placements; guarded to [n^|U| <= 2_000_000]. [None] when no
    capacity-respecting placement exists. *)

val qpp_brute_force : Problem.qpp -> (float * Placement.t) option
(** Exhaustive optimum of the full (all-clients) QPP objective; same
    guard. *)

val total_delay_brute_force : Problem.qpp -> (float * Placement.t) option
(** Exhaustive optimum of [Avg_v Gamma_f(v)]; same guard. *)
