module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum
module Mcmf = Qp_assign.Mcmf

type deployment = {
  placement : Placement.t;
  quorum_of_client : int array;
  cost : float;
  rounds : int;
}

let check (p : Problem.qpp) =
  let n = Problem.n_nodes p in
  if Problem.n_elements p <> n || Quorum.n_quorums p.Problem.system <> n then
    invalid_arg "Partial_deploy: requires |Q| = |V| = |U|";
  n

let gamma (p : Problem.qpp) f v qi =
  let q = Quorum.quorum p.Problem.system qi in
  Array.fold_left (fun acc u -> acc +. Metric.dist p.Problem.metric v f.(u)) 0. q

let cost_of (p : Problem.qpp) f q_of_client =
  let n = check p in
  if Array.length f <> n || Array.length q_of_client <> n then
    invalid_arg "Partial_deploy.cost_of: bad lengths";
  let acc = ref 0. in
  for v = 0 to n - 1 do
    acc := !acc +. gamma p f v q_of_client.(v)
  done;
  !acc /. float_of_int n

(* Min-cost perfect matching on an n x n cost matrix via MCMF;
   returns the column matched to each row. *)
let matching cost =
  let n = Array.length cost in
  let source = 0 and sink = (2 * n) + 1 in
  let left i = 1 + i and right j = 1 + n + j in
  let net = Mcmf.create ((2 * n) + 2) in
  for i = 0 to n - 1 do
    Mcmf.add_edge net ~src:source ~dst:(left i) ~capacity:1 ~cost:0.;
    Mcmf.add_edge net ~src:(right i) ~dst:sink ~capacity:1 ~cost:0.;
    for j = 0 to n - 1 do
      Mcmf.add_edge net ~src:(left i) ~dst:(right j) ~capacity:1 ~cost:cost.(i).(j)
    done
  done;
  let flow, _ = Mcmf.min_cost_flow net ~source ~sink () in
  assert (flow = n);
  let assign = Array.make n (-1) in
  List.iter
    (fun (src, dst, fl, _) ->
      if fl > 0 && src >= 1 && src <= n && dst > n && dst <= 2 * n then
        assign.(src - 1) <- dst - n - 1)
    (Mcmf.flow_on_edges net);
  Array.iter (fun j -> assert (j >= 0)) assign;
  assign

(* Optimal q given f: match client v to quorum Q at cost gamma_f(v,Q). *)
let best_q (p : Problem.qpp) n f =
  matching (Array.init n (fun v -> Array.init n (fun qi -> gamma p f v qi)))

(* Optimal f given q: the objective separates as
   sum_u sum_{v : u in Q_q(v)} d(v, f(u)), a matching of elements to
   nodes. *)
let best_f (p : Problem.qpp) n q_of_client =
  let weight = Array.make_matrix n n 0. in
  (* weight.(u).(x) = sum over clients v using a quorum containing u of
     d(v, x). *)
  for v = 0 to n - 1 do
    let q = Quorum.quorum p.Problem.system q_of_client.(v) in
    Array.iter
      (fun u ->
        for x = 0 to n - 1 do
          weight.(u).(x) <- weight.(u).(x) +. Metric.dist p.Problem.metric v x
        done)
      q
  done;
  matching weight

let solve ?(max_rounds = 50) (p : Problem.qpp) =
  let n = check p in
  (* Start from the identity placement. *)
  let f = ref (Array.init n (fun u -> u)) in
  let q = ref (best_q p n !f) in
  let current = ref (cost_of p !f !q) in
  let rounds = ref 0 in
  let improved = ref true in
  while !improved && !rounds < max_rounds do
    improved := false;
    incr rounds;
    let f' = best_f p n !q in
    let q' = best_q p n f' in
    let c = cost_of p f' q' in
    if c < !current -. 1e-12 then begin
      f := f';
      q := q';
      current := c;
      improved := true
    end
  done;
  { placement = !f; quorum_of_client = !q; cost = !current; rounds = !rounds }

let brute_force (p : Problem.qpp) =
  let n = check p in
  if n > 5 then invalid_arg "Partial_deploy.brute_force: n <= 5 required";
  let best = ref infinity in
  let perm = Array.init n (fun i -> i) in
  let rec permutations a k acc =
    if k = n then acc (Array.copy a)
    else
      for i = k to n - 1 do
        let tmp = a.(k) in
        a.(k) <- a.(i);
        a.(i) <- tmp;
        permutations a (k + 1) acc;
        let tmp = a.(k) in
        a.(k) <- a.(i);
        a.(i) <- tmp
      done
  in
  permutations perm 0 (fun f ->
      permutations (Array.init n (fun i -> i)) 0 (fun q ->
          let c = cost_of p f q in
          if c < !best then best := c));
  !best
