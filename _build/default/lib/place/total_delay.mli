(** Total-delay placement (Section 5, Theorem 5.1).

    The objective [Avg_v Gamma_f(v)] separates per element:
    [Avg_v Gamma_f(v) = sum_u load(u) * AvgDist(f(u))] with
    [AvgDist(v) = Avg_{v'} d(v', v)] (rate-weighted when client rates
    are present). That makes the problem a GAP instance with
    [c_vu = load(u) * AvgDist(v)] and [p_vu = load(u)]; Shmoys–Tardos
    rounding yields cost at most the capacity-respecting optimum with
    loads at most [2 cap(v)]. *)

type result = {
  placement : Placement.t;
  cost : float; (* Avg_v Gamma_f(v) *)
  lp_cost : float; (* GAP LP value: lower bound on the OPT *)
  load_violation : float; (* max load_f(v)/cap(v) — Thm 5.1: <= 2 *)
}

val solve : Problem.qpp -> result option
(** [None] when the GAP relaxation is infeasible. *)

val exact_uniform : Problem.qpp -> (float * Placement.t) option
(** Exact optimum when all element loads are equal: each node holds
    [floor (cap / load)] elements and the objective only depends on
    how many elements each node hosts, so greedily filling nodes by
    increasing [AvgDist] is optimal. Oracle for experiment E7. *)

val avg_dist_to : Problem.qpp -> int -> float
(** The (rate-weighted) [AvgDist(v)] used in the reduction. *)
