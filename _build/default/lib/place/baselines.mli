(** Baseline placement heuristics the experiments compare against.

    None carries the paper's guarantees; they anchor the tables:
    random shows what "no placement effort" costs, greedy is the
    natural systems heuristic, the Lin single-node solution is the
    delay-optimal/load-catastrophic extreme from Related Work, and
    local search is the strongest guarantee-free contender. *)

val random : Qp_util.Rng.t -> Problem.qpp -> Placement.t option
(** Capacity-respecting placement by randomized first-fit: elements in
    random order, each on a random node among those with residual
    capacity. [None] after 100 failed restarts. *)

val greedy_closest : Problem.qpp -> int -> Placement.t option
(** [greedy_closest p v0]: elements sorted by decreasing load, each on
    the nearest node to [v0] with residual capacity. [None] when some
    element does not fit. *)

val lin_single_node : Problem.qpp -> int * Placement.t
(** The Related-Work extreme: every element on the node minimizing the
    average client distance — ignores capacities entirely. Returns the
    chosen hub and the placement. *)

val local_search :
  ?max_steps:int ->
  objective:(Placement.t -> float) ->
  Problem.qpp ->
  Placement.t ->
  Placement.t
(** First-improvement hill climbing over single-element moves and
    pairwise swaps, restricted to capacity-respecting neighbors.
    Starts from (and never worsens) the given placement. *)
