(** Placements [f : U -> V] and their load accounting.

    A placement is an array indexed by element id whose entries are
    node ids. [loadf v = sum of load(u) over u with f(u) = v]
    (Section 1.2). *)

type t = int array

val validate : Problem.qpp -> t -> unit
(** Shape and range check. @raise Invalid_argument otherwise. *)

val node_loads : Problem.qpp -> t -> float array
(** [loadf(v)] for every node. *)

val respects_capacities : ?slack:float -> Problem.qpp -> t -> bool
(** [loadf(v) <= slack * cap(v)] everywhere (default slack 1, with the
    repository float tolerance). *)

val max_violation : Problem.qpp -> t -> float
(** [max_v loadf(v) / cap(v)] over nodes with positive load; the
    "capacity blow-up factor" reported by the experiments. Nodes with
    zero capacity and positive load give [infinity]. *)

val used_nodes : t -> int list
(** Distinct nodes in the image of [f]. *)

val pp : Format.formatter -> t -> unit
