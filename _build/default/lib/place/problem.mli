(** Problem instances.

    A {!qpp} is the paper's Problem 1.1: place the universe of a
    quorum system onto the nodes of a metric (shortest-path closure of
    a network) subject to per-node capacities, minimizing the average
    over clients of the expected max-delay. A {!ssqpp} (Problem 3.2)
    is the single-client restriction with source [v0]. *)

type qpp = {
  metric : Qp_graph.Metric.t;
  capacities : float array; (* cap(v) per node *)
  system : Qp_quorum.Quorum.system;
  strategy : Qp_quorum.Strategy.t;
  client_rates : float array option;
      (* Section 6 extension: relative access rates per client; [None]
         means uniform. *)
}

type ssqpp = {
  metric : Qp_graph.Metric.t;
  capacities : float array;
  system : Qp_quorum.Quorum.system;
  strategy : Qp_quorum.Strategy.t;
  v0 : int;
}

val make_qpp :
  metric:Qp_graph.Metric.t ->
  capacities:float array ->
  system:Qp_quorum.Quorum.system ->
  strategy:Qp_quorum.Strategy.t ->
  ?client_rates:float array ->
  unit ->
  qpp
(** Validates shapes, non-negative capacities, the strategy, and
    positive total client rate. *)

val make_ssqpp :
  metric:Qp_graph.Metric.t ->
  capacities:float array ->
  system:Qp_quorum.Quorum.system ->
  strategy:Qp_quorum.Strategy.t ->
  v0:int ->
  ssqpp

val of_graph_qpp :
  graph:Qp_graph.Graph.t ->
  capacities:float array ->
  system:Qp_quorum.Quorum.system ->
  strategy:Qp_quorum.Strategy.t ->
  ?client_rates:float array ->
  unit ->
  qpp
(** Convenience: takes the shortest-path closure of a connected
    graph. *)

val ssqpp_of_qpp : qpp -> int -> ssqpp
val qpp_of_ssqpp : ssqpp -> qpp

val element_loads : qpp -> float array
(** load(u) induced by the strategy. *)

val capacity_feasible : qpp -> bool
(** Necessary conditions: total capacity >= total load and every
    element fits somewhere ([min load <= max cap]). Not sufficient
    (bin packing), but cheap and catches hopeless instances. *)

val n_nodes : qpp -> int
val n_elements : qpp -> int
