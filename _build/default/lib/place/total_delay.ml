module Metric = Qp_graph.Metric
module Gap = Qp_assign.Gap
module St = Qp_assign.Shmoys_tardos

type result = {
  placement : Placement.t;
  cost : float;
  lp_cost : float;
  load_violation : float;
}

let avg_dist_to (p : Problem.qpp) v =
  match p.Problem.client_rates with
  | None -> Metric.average_distance p.Problem.metric v
  | Some rates ->
      let total = Array.fold_left ( +. ) 0. rates in
      let acc = ref 0. in
      Array.iteri
        (fun v' r -> if r > 0. then acc := !acc +. (r *. Metric.dist p.Problem.metric v' v))
        rates;
      !acc /. total

let to_gap (p : Problem.qpp) =
  let n = Problem.n_nodes p in
  let nu = Problem.n_elements p in
  let loads = Problem.element_loads p in
  let avg = Array.init n (fun v -> avg_dist_to p v) in
  let cost = Array.init n (fun v -> Array.init nu (fun u -> loads.(u) *. avg.(v))) in
  let load = Array.init n (fun _ -> Array.copy loads) in
  Gap.make ~cost ~load ~budget:(Array.copy p.Problem.capacities) ()

let solve (p : Problem.qpp) =
  let gap = to_gap p in
  match Qp_assign.Gap_lp.solve gap with
  | None -> None
  | Some { Qp_assign.Gap_lp.y; lp_cost } ->
      let rounded = St.round gap y in
      let placement = rounded.St.assignment in
      Some
        {
          placement;
          cost = Delay.avg_total_delay p placement;
          lp_cost;
          load_violation = Placement.max_violation p placement;
        }

let exact_uniform (p : Problem.qpp) =
  let loads = Problem.element_loads p in
  let load = loads.(0) in
  if not (Array.for_all (fun l -> Qp_util.Floatx.approx l load) loads) then
    invalid_arg "Total_delay.exact_uniform: element loads are not uniform";
  if load <= 0. then invalid_arg "Total_delay.exact_uniform: zero element load";
  let n = Problem.n_nodes p in
  let nu = Problem.n_elements p in
  (* Node v holds at most floor(cap/load) elements; fill cheapest
     AvgDist nodes first. *)
  let slots =
    Array.init n (fun v ->
        (avg_dist_to p v, v, int_of_float (Float.floor ((p.Problem.capacities.(v) +. 1e-12) /. load))))
  in
  Array.sort compare slots;
  let placement = Array.make nu (-1) in
  let u = ref 0 in
  Array.iter
    (fun (_, v, k) ->
      let take = Stdlib.min k (nu - !u) in
      for _ = 1 to take do
        placement.(!u) <- v;
        incr u
      done)
    slots;
  if !u < nu then None else Some (Delay.avg_total_delay p placement, placement)
