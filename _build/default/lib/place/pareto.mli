(** The load/delay Pareto frontier (the Section 1.1 tension as an
    API).

    Sweeps the Theorem 3.7/1.2 rounding parameter and reports the
    non-dominated (delay, capacity-violation) pairs, each carrying the
    alpha that produced it. Used by experiment E9 and the
    capacity_tradeoff example. *)

type point = {
  alpha : float;
  delay : float; (* Avg_v Delta_f(v) *)
  load_violation : float; (* max_v load_f(v)/cap(v) *)
  placement : Placement.t;
}

val frontier : ?alphas:float list -> ?candidates:int list -> Problem.qpp -> point list
(** Non-dominated points sorted by increasing delay (hence
    non-increasing load violation). Default alphas:
    [1.25; 1.5; 2; 3; 4; 6; 8]. Empty when the LP is infeasible for
    every candidate source. *)

val dominates : point -> point -> bool
(** [dominates a b]: a is no worse in both coordinates and strictly
    better in one. *)
