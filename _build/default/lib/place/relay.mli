(** Lemma 3.1 — the structural relay result.

    For any placement [f] there is a node [v0] (the minimizer of
    [Delta_f]) such that sending every access via [v0] costs at most 5
    times the direct average max-delay:

    Avg_v [ sum_Q p(Q) (d(v, v0) + delta_f(v0, Q)) ]
      = Avg_v d(v, v0) + Delta_f(v0)          (Eq. 8)
      <= 5 Avg_v [Delta_f(v)].                 (Eq. 4)

    This module computes both sides, the witness [v0], and the ratio —
    experiment E2 samples these over many instances and placements. *)

type analysis = {
  v0 : int; (* argmin_v Delta_f(v) *)
  direct : float; (* Avg_v Delta_f(v) *)
  relayed : float; (* Avg_v d(v,v0) + Delta_f(v0) *)
  ratio : float; (* relayed / direct (0/0 reported as 1) *)
}

val analyze : Problem.qpp -> Placement.t -> analysis

val relay_delay_via : Problem.qpp -> Placement.t -> int -> float
(** Left-hand side of Eq. 4 for an arbitrary relay node (not
    necessarily the minimizer). *)

val bound : float
(** The paper's constant, 5. *)
