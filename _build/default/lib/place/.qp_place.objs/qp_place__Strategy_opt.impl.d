lib/place/strategy_opt.ml: Array Delay Float List Placement Problem Qp_lp Qp_quorum
