lib/place/rounding.mli: Filtering Placement Problem
