lib/place/exact.mli: Placement Problem
