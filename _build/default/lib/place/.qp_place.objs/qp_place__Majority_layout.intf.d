lib/place/majority_layout.mli: Placement Problem Qp_quorum
