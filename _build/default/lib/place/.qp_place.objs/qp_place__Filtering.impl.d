lib/place/filtering.ml: Array Float List Lp_formulation
