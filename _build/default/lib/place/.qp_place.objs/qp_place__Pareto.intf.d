lib/place/pareto.mli: Placement Problem
