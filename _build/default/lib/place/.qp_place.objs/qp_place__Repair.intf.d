lib/place/repair.mli: Placement Problem
