lib/place/integrality.mli: Problem
