lib/place/pareto.ml: Float List Placement Problem Qpp_solver
