lib/place/problem.ml: Array Float Qp_graph Qp_quorum Qp_util
