lib/place/grid_layout.mli: Placement Problem
