lib/place/integrality.ml: Array List Lp_formulation Problem Qp_graph Qp_quorum
