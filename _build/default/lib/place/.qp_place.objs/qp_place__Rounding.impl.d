lib/place/rounding.ml: Array Delay Filtering Lp_formulation Placement Problem Qp_assign Qp_quorum
