lib/place/majority_layout.ml: Array List Problem Qp_graph Qp_quorum Qp_util
