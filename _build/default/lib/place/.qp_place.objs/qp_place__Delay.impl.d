lib/place/delay.ml: Array Float Placement Problem Qp_graph Qp_quorum
