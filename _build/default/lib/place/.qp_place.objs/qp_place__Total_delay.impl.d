lib/place/total_delay.ml: Array Delay Float Placement Problem Qp_assign Qp_graph Qp_util Stdlib
