lib/place/partial_deploy.mli: Placement Problem
