lib/place/lp_formulation.ml: Array List Problem Qp_graph Qp_lp Qp_quorum
