lib/place/partial_deploy.ml: Array List Placement Problem Qp_assign Qp_graph Qp_quorum
