lib/place/repair.ml: Array Delay List Placement Problem Qpp_solver Total_delay
