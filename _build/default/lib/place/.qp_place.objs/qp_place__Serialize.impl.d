lib/place/serialize.ml: Array Buffer Fun List Printf Problem Qp_graph Qp_quorum String
