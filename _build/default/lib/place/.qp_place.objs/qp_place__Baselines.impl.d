lib/place/baselines.ml: Array List Placement Problem Qp_graph Qp_util
