lib/place/delay.mli: Placement Problem
