lib/place/qpp_solver.mli: Placement Problem Rounding
