lib/place/filtering.mli: Lp_formulation
