lib/place/baselines.mli: Placement Problem Qp_util
