lib/place/total_delay.mli: Placement Problem
