lib/place/capacity.ml: Array Float Qp_graph Stdlib
