lib/place/qpp_solver.ml: Array Delay List Logs Placement Problem Qp_graph Relay Rounding
