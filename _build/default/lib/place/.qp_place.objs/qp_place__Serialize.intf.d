lib/place/serialize.mli: Placement Problem
