lib/place/lp_formulation.mli: Problem Qp_lp
