lib/place/relay.ml: Array Delay Problem Qp_graph
