lib/place/placement.ml: Array Format List Problem Qp_util String
