lib/place/capacity.mli: Placement Qp_graph
