lib/place/exact.ml: Array Delay List Problem Qp_graph Qp_quorum Qp_util
