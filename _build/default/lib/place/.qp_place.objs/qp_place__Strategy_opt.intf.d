lib/place/strategy_opt.mli: Placement Problem Qp_quorum
