lib/place/placement.mli: Format Problem
