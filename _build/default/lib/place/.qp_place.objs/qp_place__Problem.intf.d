lib/place/problem.mli: Qp_graph Qp_quorum
