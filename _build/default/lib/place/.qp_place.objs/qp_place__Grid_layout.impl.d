lib/place/grid_layout.ml: Array Capacity Delay Float List Placement Problem Qp_graph Qp_quorum Qp_util Stdlib
