lib/place/relay.mli: Placement Problem
