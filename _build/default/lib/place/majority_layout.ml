module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Combin = Qp_util.Combin

let closed_form ~n ~t ~tau_desc =
  if Array.length tau_desc <> n then invalid_arg "Majority_layout.closed_form: bad length";
  if 2 * t <= n then invalid_arg "Majority_layout.closed_form: 2t > n required";
  for i = 0 to n - 2 do
    if tau_desc.(i) < tau_desc.(i + 1) -. 1e-9 then
      invalid_arg "Majority_layout.closed_form: tau not non-increasing"
  done;
  let total = float_of_int (Combin.binomial n t) in
  let acc = ref 0. in
  for i = 1 to n - t + 1 do
    acc := !acc +. (tau_desc.(i - 1) *. float_of_int (Combin.binomial (n - i) (t - 1)))
  done;
  !acc /. total

let threshold_of_system system =
  let qs = Quorum.quorums system in
  let t = Array.length qs.(0) in
  Array.iter
    (fun q ->
      if Array.length q <> t then
        invalid_arg "Majority_layout: quorums are not all the same size")
    qs;
  let n = Quorum.universe system in
  if Array.length qs <> Combin.binomial n t then
    invalid_arg "Majority_layout: not the complete threshold family";
  t

let place (s : Problem.ssqpp) =
  let n = Quorum.universe s.Problem.system in
  let t = threshold_of_system s.Problem.system in
  let uniform = 1. /. float_of_int (Quorum.n_quorums s.Problem.system) in
  Array.iter
    (fun p ->
      if not (Qp_util.Floatx.approx p uniform) then
        invalid_arg "Majority_layout: strategy must be uniform")
    s.Problem.strategy;
  let load = (Strategy.loads s.Problem.system s.Problem.strategy).(0) in
  let order = Metric.nodes_by_distance s.Problem.metric s.Problem.v0 in
  let usable =
    List.filter
      (fun v ->
        let cap = s.Problem.capacities.(v) in
        if cap >= (2. *. load) -. 1e-12 then
          invalid_arg "Majority_layout: capacity admits two elements (expand first)";
        cap +. 1e-12 >= load)
      (Array.to_list order)
  in
  if List.length usable < n then None
  else begin
    let nodes = Array.of_list (List.filteri (fun i _ -> i < n) usable) in
    let placement = Array.init n (fun u -> nodes.(u)) in
    let tau_desc =
      let d = Array.map (fun v -> Metric.dist s.Problem.metric s.Problem.v0 v) nodes in
      Array.sort (fun a b -> compare b a) d;
      d
    in
    Some (closed_form ~n ~t ~tau_desc, placement)
  end
