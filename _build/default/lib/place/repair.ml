type repair = {
  placement : Placement.t;
  moved : int list;
  delay_before : float;
  delay_after : float;
}

(* The post-churn view of a problem: dead nodes cannot host (capacity
   0) and are no longer clients (rate 0). *)
let survivors_problem (p : Problem.qpp) dead_set =
  let n = Problem.n_nodes p in
  let capacities =
    Array.mapi (fun v c -> if dead_set.(v) then 0. else c) p.Problem.capacities
  in
  let base_rates =
    match p.Problem.client_rates with Some r -> r | None -> Array.make n 1.
  in
  let client_rates = Array.mapi (fun v r -> if dead_set.(v) then 0. else r) base_rates in
  Problem.make_qpp ~metric:p.Problem.metric ~capacities ~system:p.Problem.system
    ~strategy:p.Problem.strategy ~client_rates ()

let dead_array (p : Problem.qpp) dead =
  let n = Problem.n_nodes p in
  let a = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Repair: dead node out of range";
      a.(v) <- true)
    dead;
  if Array.for_all (fun d -> d) a then invalid_arg "Repair: no surviving node";
  a

let repair (p : Problem.qpp) f ~dead =
  Placement.validate p f;
  let dead_set = dead_array p dead in
  let p' = survivors_problem p dead_set in
  let loads = Problem.element_loads p in
  let n = Problem.n_nodes p in
  (* Residual capacity of survivors after the elements that stay. *)
  let residual = Array.copy p'.Problem.capacities in
  let displaced = ref [] in
  Array.iteri
    (fun u v ->
      if dead_set.(v) then displaced := u :: !displaced
      else residual.(v) <- residual.(v) -. loads.(u))
    f;
  let displaced = List.sort (fun a b -> compare loads.(b) loads.(a)) !displaced in
  (* Surviving nodes ordered by (rate-weighted) closeness to clients. *)
  let hosts =
    List.sort
      (fun a b -> compare (Total_delay.avg_dist_to p' a) (Total_delay.avg_dist_to p' b))
      (List.filter (fun v -> not dead_set.(v)) (List.init n (fun v -> v)))
  in
  let patched = Array.copy f in
  let ok = ref true in
  List.iter
    (fun u ->
      if !ok then
        match List.find_opt (fun v -> residual.(v) +. 1e-12 >= loads.(u)) hosts with
        | Some v ->
            patched.(u) <- v;
            residual.(v) <- residual.(v) -. loads.(u)
        | None -> ok := false)
    displaced;
  if not !ok then None
  else
    Some
      {
        placement = patched;
        moved = displaced;
        delay_before = Delay.avg_max_delay p' f;
        delay_after = Delay.avg_max_delay p' patched;
      }

let degradation_vs_resolve (p : Problem.qpp) f ~dead =
  let dead_set = dead_array p dead in
  match repair p f ~dead with
  | None -> None
  | Some r -> (
      let p' = survivors_problem p dead_set in
      let survivors =
        List.filter
          (fun v -> not dead_set.(v))
          (List.init (Problem.n_nodes p) (fun v -> v))
      in
      match Qpp_solver.solve ~alpha:2. ~candidates:survivors p' with
      | None -> None
      | Some solved -> Some (r.delay_after, solved.Qpp_solver.objective))
