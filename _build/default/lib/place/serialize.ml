module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum

let float_row xs =
  String.concat " " (Array.to_list (Array.map (fun x -> Printf.sprintf "%.17g" x) xs))

let problem_to_string (p : Problem.qpp) =
  let buf = Buffer.create 4096 in
  let n = Problem.n_nodes p in
  Buffer.add_string buf "qplace-instance v1\n";
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" n);
  Buffer.add_string buf "metric\n";
  for v = 0 to n - 1 do
    Buffer.add_string buf
      (float_row (Array.init n (fun w -> Metric.dist p.Problem.metric v w)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "capacities\n";
  Buffer.add_string buf (float_row p.Problem.capacities);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "universe %d\n" (Problem.n_elements p));
  let quorums = Quorum.quorums p.Problem.system in
  Buffer.add_string buf (Printf.sprintf "quorums %d\n" (Array.length quorums));
  Array.iter
    (fun q ->
      Buffer.add_string buf "q";
      Array.iter (fun u -> Buffer.add_string buf (Printf.sprintf " %d" u)) q;
      Buffer.add_char buf '\n')
    quorums;
  Buffer.add_string buf "strategy\n";
  Buffer.add_string buf (float_row p.Problem.strategy);
  Buffer.add_char buf '\n';
  (match p.Problem.client_rates with
  | None -> Buffer.add_string buf "rates none\n"
  | Some rates ->
      Buffer.add_string buf "rates\n";
      Buffer.add_string buf (float_row rates);
      Buffer.add_char buf '\n');
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { lines : string array; mutable pos : int }

let fail cur msg = failwith (Printf.sprintf "Serialize: line %d: %s" (cur.pos + 1) msg)

let next_line cur =
  if cur.pos >= Array.length cur.lines then fail cur "unexpected end of input";
  let line = String.trim cur.lines.(cur.pos) in
  cur.pos <- cur.pos + 1;
  line

let expect cur what =
  let line = next_line cur in
  if line <> what then fail cur (Printf.sprintf "expected %S, got %S" what line)

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_floats cur expected_count =
  let line = next_line cur in
  let parts = tokens line in
  if List.length parts <> expected_count then
    fail cur (Printf.sprintf "expected %d numbers, got %d" expected_count (List.length parts));
  Array.of_list
    (List.map
       (fun s ->
         match float_of_string_opt s with
         | Some v -> v
         | None -> fail cur (Printf.sprintf "bad number %S" s))
       parts)

let parse_keyword_int cur keyword =
  let line = next_line cur in
  match tokens line with
  | [ k; v ] when k = keyword -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> fail cur (Printf.sprintf "bad integer %S" v))
  | _ -> fail cur (Printf.sprintf "expected %S <int>" keyword)

let problem_of_string text =
  (* Blank lines are insignificant. *)
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  let cur = { lines = Array.of_list lines; pos = 0 } in
  expect cur "qplace-instance v1";
  let n = parse_keyword_int cur "nodes" in
  if n <= 0 then fail cur "nodes must be positive";
  expect cur "metric";
  let matrix = Array.init n (fun _ -> parse_floats cur n) in
  expect cur "capacities";
  let capacities = parse_floats cur n in
  let universe = parse_keyword_int cur "universe" in
  let m = parse_keyword_int cur "quorums" in
  if m <= 0 then fail cur "quorums must be positive";
  let quorums =
    Array.init m (fun _ ->
        let line = next_line cur in
        match tokens line with
        | "q" :: ids ->
            Array.of_list
              (List.map
                 (fun s ->
                   match int_of_string_opt s with
                   | Some v -> v
                   | None -> fail cur (Printf.sprintf "bad element id %S" s))
                 ids)
        | _ -> fail cur "expected a 'q <ids>' line")
  in
  expect cur "strategy";
  let strategy = parse_floats cur m in
  let rates =
    let line = next_line cur in
    match tokens line with
    | [ "rates"; "none" ] -> None
    | [ "rates" ] -> Some (parse_floats cur n)
    | _ -> fail cur "expected 'rates none' or 'rates'"
  in
  expect cur "end";
  let metric =
    try Metric.of_matrix matrix
    with Invalid_argument msg -> fail cur ("invalid metric: " ^ msg)
  in
  let system =
    try Quorum.make ~universe quorums
    with Invalid_argument msg -> fail cur ("invalid quorum system: " ^ msg)
  in
  try Problem.make_qpp ~metric ~capacities ~system ~strategy ?client_rates:rates ()
  with Invalid_argument msg -> fail cur ("invalid problem: " ^ msg)

let placement_to_string f =
  String.concat " " (Array.to_list (Array.map string_of_int f))

let placement_of_string s =
  Array.of_list
    (List.map
       (fun tok ->
         match int_of_string_opt tok with
         | Some v -> v
         | None -> failwith (Printf.sprintf "Serialize: bad placement token %S" tok))
       (tokens (String.trim s)))

let save_problem path p =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (problem_to_string p))

let load_problem path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let size = in_channel_length ic in
      problem_of_string (really_input_string ic size))
