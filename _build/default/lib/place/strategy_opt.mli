(** Access-strategy re-optimization for a FIXED placement.

    The paper takes the access strategy [p] as input (chosen for load
    balance, Footnote 1). Once a placement [f] exists, a complementary
    knob opens up: re-choose [p] to minimize the delay THROUGH THIS
    PLACEMENT while still respecting node capacities — a small LP over
    the quorum probabilities:

    minimize   sum_Q p(Q) * w_Q
               with w_Q = Avg_v delta_f(v, Q)   (max-delay)
                    or   Avg_v gamma_f(v, Q)    (total-delay)
    subject to sum_Q p(Q) = 1,  p >= 0,
               load_f,p(v) = sum_{u : f(u) = v} sum_{Q : u in Q} p(Q)
                             <= cap(v)          for every node v.

    This is an ablation the Section 6 discussion invites: delay can
    only improve over the input strategy, at the price of skewing
    element loads (still within capacity). *)

type objective = Max_delay | Total_delay

type result = {
  strategy : Qp_quorum.Strategy.t;
  delay : float; (* objective value under the new strategy *)
  input_delay : float; (* same objective under the problem's strategy *)
}

val optimize : ?objective:objective -> Problem.qpp -> Placement.t -> result option
(** [None] when no distribution satisfies the capacity rows (possible:
    the input strategy itself may violate them under [f]). Default
    objective [Max_delay]. *)
