module Metric = Qp_graph.Metric

type analysis = { v0 : int; direct : float; relayed : float; ratio : float }

let bound = 5.

let relay_delay_via (p : Problem.qpp) f v0 =
  (* Avg_v d(v, v0) + Delta_f(v0): Eq. (8). For rate-weighted clients
     the average over v is rate-weighted as in Section 6. *)
  let avg_dist =
    match p.Problem.client_rates with
    | None -> Metric.average_distance p.Problem.metric v0
    | Some rates ->
        let total = Array.fold_left ( +. ) 0. rates in
        let acc = ref 0. in
        Array.iteri
          (fun v r -> if r > 0. then acc := !acc +. (r *. Metric.dist p.Problem.metric v v0))
          rates;
        !acc /. total
  in
  avg_dist +. Delay.client_max_delay p f v0

let analyze (p : Problem.qpp) f =
  let delays = Delay.all_client_max_delays p f in
  let v0 = ref 0 in
  Array.iteri (fun v d -> if d < delays.(!v0) then v0 := v) delays;
  let v0 = !v0 in
  let direct = Delay.avg_max_delay p f in
  let relayed = relay_delay_via p f v0 in
  let ratio = if direct = 0. then if relayed = 0. then 1. else infinity else relayed /. direct in
  { v0; direct; relayed; ratio }
