(** The Appendix A integrality-gap instances (Claim A.1, Figure 1).

    Both use a single quorum containing the whole universe, unit
    capacities, and a distance profile that lets the LP spread the
    quorum fractionally over cheap nodes while any integral placement
    must pay for the farthest one.

    - {!path_instance}: a synthetic metric with [n-1] nodes at
      distance 1 and one at distance [M >> 1]; gap -> n as M grows.
    - {!figure1_instance}: the star-with-tail unweighted graph of
      Figure 1 on [k^2] nodes; gap -> Theta(sqrt n) = Theta(k). *)

type gap_report = {
  n : int;
  lp_value : float; (* Z* of LP (9)-(14) *)
  integral_opt : float; (* exact optimal Delta_f(v0) *)
  gap : float; (* integral_opt / lp_value *)
}

val path_instance : n:int -> m:float -> Problem.ssqpp
(** [n >= 2] elements/nodes, far node at distance [m >= 1]. The source
    [v0] is node 0 at distance 0. *)

val figure1_instance : int -> Problem.ssqpp
(** [figure1_instance k] builds the Figure-1 graph instance
    ([n = k^2]) with the single full quorum and unit capacities. *)

val measure : Problem.ssqpp -> gap_report
(** Solves the LP and the exact optimum (single-quorum instances have
    a closed-form optimum: place the quorum on the [|U|] nearest
    usable nodes and pay the largest of those distances). *)
