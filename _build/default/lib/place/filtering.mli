(** The filtering step of Section 3.3.1, generalized to any
    [alpha > 1] (Theorem 3.7).

    From an LP solution [x] it builds [x_hat] with
    [x_hat_tu <= alpha * x_tu] and [sum_t x_hat_tu = 1], greedily
    moving mass toward small ranks; likewise for the quorum variables.
    Consequences used downstream:

    - (Claim 3.8 generalized) if [x_hat_tQ > 0] then
      [d_t <= alpha/(alpha-1) * D_Q];
    - (Lemma 3.9 generalized) any placement with [f(u)] inside
      [support u] has [Delta_f(v0) <= alpha/(alpha-1) * Z*];
    - per-rank fractional load grows by at most [alpha]. *)

type filtered = {
  alpha : float;
  sol : Lp_formulation.fractional; (* the unfiltered input *)
  x_hat_elem : float array array; (* rank -> element *)
  x_hat_quorum : float array array; (* rank -> quorum *)
}

val apply : alpha:float -> Lp_formulation.fractional -> filtered
(** @raise Invalid_argument unless [alpha > 1]. *)

val support : filtered -> int -> int list
(** [support flt u] = ranks [t] with [x_hat_tu > 0] — the set [S_u] of
    Lemma 3.9. *)

val max_rank_distance : filtered -> int -> float
(** Largest [d_t] over the support of an element. *)

val check_invariants : filtered -> bool
(** Test hook: filtered rows sum to 1, stay within [alpha * x], and
    every supported rank of a quorum satisfies the generalized
    Claim 3.8 distance bound. *)
