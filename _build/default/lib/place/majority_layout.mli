(** Majority quorums under the uniform strategy (Section 4.2).

    Every capacity-respecting placement on a fixed set of usable nodes
    has the same single-source delay, given by Eq. (19):

    Delta = (1 / C(n,t)) * sum_{i=1}^{n-t+1} tau_i * C(n-i, t-1)

    where [tau_1 >= ... >= tau_n] are the distances from [v0] to the
    hosting nodes in decreasing order. Minimizing is therefore just
    "use the n closest usable nodes". *)

val closed_form : n:int -> t:int -> tau_desc:float array -> float
(** Eq. (19). [tau_desc] must have length [n] and be non-increasing.
    @raise Invalid_argument otherwise or when [2t <= n]. *)

val place : Problem.ssqpp -> (float * Placement.t) option
(** Optimal placement for an explicit Majority system under the
    uniform strategy in the unit-capacity regime (cf.
    {!Grid_layout.place}): elements on the [n] closest usable nodes,
    identity order. Returns the Eq. (19) delay. [None] when too few
    usable nodes. @raise Invalid_argument if the system is not a
    threshold system with uniform strategy. *)

val threshold_of_system : Qp_quorum.Quorum.system -> int
(** Recovers [t] (all quorums must share one size and the family must
    be complete: [C(n,t)] quorums). @raise Invalid_argument
    otherwise. *)
