module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy

type layout = {
  placement : Placement.t;
  delay : float;
  matrix_ranks : int array array;
}

let rank_of_cell k i j =
  if i < 0 || i >= k || j < 0 || j >= k then invalid_arg "Grid_layout.rank_of_cell";
  let l = Stdlib.max i j in
  if j = l && i < l then (l * l) + i + 1 else (l * l) + l + j + 1

let check_grid (s : Problem.ssqpp) =
  let nu = Quorum.universe s.Problem.system in
  let k = int_of_float (Float.round (sqrt (float_of_int nu))) in
  if k * k <> nu || Quorum.n_quorums s.Problem.system <> nu then
    invalid_arg "Grid_layout: system is not a k x k grid";
  (* Quorum (i,j) must be row i union column j. *)
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      let expected =
        let row = List.init k (fun c -> (i * k) + c) in
        let col = List.init k (fun r -> (r * k) + j) in
        List.sort_uniq compare (row @ col)
      in
      let actual = Array.to_list (Quorum.quorum s.Problem.system ((i * k) + j)) in
      if expected <> actual then invalid_arg "Grid_layout: system is not a k x k grid"
    done
  done;
  let uniform = 1. /. float_of_int nu in
  Array.iter
    (fun p ->
      if not (Qp_util.Floatx.approx p uniform) then
        invalid_arg "Grid_layout: strategy must be uniform")
    s.Problem.strategy;
  k

let usable_nodes (s : Problem.ssqpp) ~load =
  let order = Metric.nodes_by_distance s.Problem.metric s.Problem.v0 in
  List.filter
    (fun v ->
      let cap = s.Problem.capacities.(v) in
      if cap >= (2. *. load) -. 1e-12 then
        invalid_arg "Grid_layout: capacity admits two elements (expand first)";
      cap +. 1e-12 >= load)
    (Array.to_list order)

let place (s : Problem.ssqpp) =
  let k = check_grid s in
  let nu = k * k in
  let load = (Strategy.loads s.Problem.system s.Problem.strategy).(0) in
  let usable = usable_nodes s ~load in
  if List.length usable < nu then None
  else begin
    let nearest = Array.of_list (List.filteri (fun i _ -> i < nu) usable) in
    (* tau ranks: 1-based index r corresponds to the r-th LARGEST
       distance, i.e. nearest.(nu - r). *)
    let node_of_rank r = nearest.(nu - r) in
    let matrix_ranks = Array.init k (fun i -> Array.init k (fun j -> rank_of_cell k i j)) in
    let placement = Array.make nu 0 in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        placement.((i * k) + j) <- node_of_rank matrix_ranks.(i).(j)
      done
    done;
    let delay = Delay.ssqpp_delay s placement in
    Some { placement; delay; matrix_ranks }
  end

let predicted_delay tau_desc k =
  if Array.length tau_desc <> k * k then invalid_arg "Grid_layout.predicted_delay";
  (* Largest tau in row i has rank rank_of_cell k i 0 (cell (0,0) when
     i = 0); largest in column j has rank rank_of_cell k 0 j. *)
  let acc = ref 0. in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      let r = Stdlib.min (rank_of_cell k i 0) (rank_of_cell k 0 j) in
      acc := !acc +. tau_desc.(r - 1)
    done
  done;
  !acc /. float_of_int (k * k)

let place_with_expansion (s : Problem.ssqpp) =
  let k = check_grid s in
  ignore k;
  let load = (Strategy.loads s.Problem.system s.Problem.strategy).(0) in
  let e = Capacity.expand s.Problem.metric s.Problem.capacities ~load () in
  (* v0 must exist in the expanded metric; add it as a zero-capacity
     stand-in by locating any copy of the original v0, or if v0 has no
     copies, appending it. Simplest correct approach: rebuild the
     expanded metric including a dedicated source row. *)
  let m = Array.length e.Capacity.original_of_copy in
  let src_copy = ref (-1) in
  Array.iteri
    (fun c v -> if !src_copy < 0 && v = s.Problem.v0 then src_copy := c)
    e.Capacity.original_of_copy;
  let metric, caps, v0, original_of_copy =
    if !src_copy >= 0 then
      (e.Capacity.metric, e.Capacity.capacities, !src_copy, e.Capacity.original_of_copy)
    else begin
      let all = Array.append e.Capacity.original_of_copy [| s.Problem.v0 |] in
      let d =
        Array.init (m + 1) (fun i ->
            Array.init (m + 1) (fun j -> Metric.dist s.Problem.metric all.(i) all.(j)))
      in
      (Metric.of_matrix d, Array.append e.Capacity.capacities [| 0. |], m, all)
    end
  in
  let expanded_problem =
    Problem.make_ssqpp ~metric ~capacities:caps ~system:s.Problem.system
      ~strategy:s.Problem.strategy ~v0
  in
  match place expanded_problem with
  | None -> None
  | Some layout ->
      let projected = Array.map (fun c -> original_of_copy.(c)) layout.placement in
      Some (layout, projected)
