type cmp = Le | Ge | Eq

type constr = { terms : (int * float) list; cmp : cmp; rhs : float }

type t = {
  n : int;
  obj : float array;
  mutable rows : constr list; (* reverse insertion order *)
  mutable n_rows : int;
}

let create n =
  if n < 0 then invalid_arg "Lp.create: negative variable count";
  { n; obj = Array.make n 0.; rows = []; n_rows = 0 }

let n_vars t = t.n

let n_constraints t = t.n_rows

let check_var t v name =
  if v < 0 || v >= t.n then invalid_arg ("Lp." ^ name ^ ": variable out of range")

let set_objective t v c =
  check_var t v "set_objective";
  t.obj.(v) <- c

let add_objective t v c =
  check_var t v "add_objective";
  t.obj.(v) <- t.obj.(v) +. c

let objective t = Array.copy t.obj

let merge_terms terms =
  let tbl = Hashtbl.create (List.length terms) in
  List.iter
    (fun (v, c) ->
      let cur = try Hashtbl.find tbl v with Not_found -> 0. in
      Hashtbl.replace tbl v (cur +. c))
    terms;
  Hashtbl.fold (fun v c acc -> if c = 0. then acc else (v, c) :: acc) tbl []

let add_constraint t terms cmp rhs =
  List.iter (fun (v, _) -> check_var t v "add_constraint") terms;
  t.rows <- { terms = merge_terms terms; cmp; rhs } :: t.rows;
  t.n_rows <- t.n_rows + 1

let constraints t = List.rev t.rows

let eval_terms terms x = List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0. terms

let is_feasible ?(tol = 1e-7) t x =
  Array.length x = t.n
  && Array.for_all (fun xi -> xi >= -.tol) x
  && List.for_all
       (fun { terms; cmp; rhs } ->
         let lhs = eval_terms terms x in
         let slack_scale = Float.max 1. (Float.abs rhs) in
         match cmp with
         | Le -> lhs <= rhs +. (tol *. slack_scale)
         | Ge -> lhs >= rhs -. (tol *. slack_scale)
         | Eq -> Float.abs (lhs -. rhs) <= tol *. slack_scale)
       t.rows

let objective_value t x =
  let acc = ref 0. in
  for v = 0 to t.n - 1 do
    acc := !acc +. (t.obj.(v) *. x.(v))
  done;
  !acc

let pp ppf t = Format.fprintf ppf "lp(vars=%d, rows=%d)" t.n t.n_rows
