(** Linear-program model builder.

    Variables are dense ints [0 .. n_vars-1], all constrained to be
    non-negative (the placement LPs of the paper only need [x >= 0];
    upper bounds are expressed as rows). The objective is always
    MINIMIZED; negate coefficients to maximize.

    Models are consumed by {!Simplex.solve}. *)

type cmp = Le | Ge | Eq

type constr = { terms : (int * float) list; cmp : cmp; rhs : float }

type t

val create : int -> t
(** [create n] is a model with [n] non-negative variables and zero
    objective. *)

val n_vars : t -> int
val n_constraints : t -> int

val set_objective : t -> int -> float -> unit
(** [set_objective lp v c] sets the objective coefficient of variable
    [v] to [c] (overwrites). *)

val add_objective : t -> int -> float -> unit
(** Adds to the existing coefficient. *)

val objective : t -> float array

val add_constraint : t -> (int * float) list -> cmp -> float -> unit
(** [add_constraint lp terms cmp rhs] appends a row
    [sum_i c_i x_i cmp rhs]. Duplicate variable mentions are summed.
    @raise Invalid_argument on out-of-range variables. *)

val constraints : t -> constr list
(** Rows in insertion order. *)

val eval_terms : (int * float) list -> float array -> float
(** Dot product of a row with a point. *)

val is_feasible : ?tol:float -> t -> float array -> bool
(** Checks non-negativity and every row at the given point. *)

val objective_value : t -> float array -> float

val pp : Format.formatter -> t -> unit
