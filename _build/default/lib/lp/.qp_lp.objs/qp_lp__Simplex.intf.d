lib/lp/simplex.mli: Lp
