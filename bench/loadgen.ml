(* Standalone closed-loop load generator for qp_serve — a thin flag
   parser over {!Qp_serve.Loadgen}, in the style of [bench/main.ml].
   The CLI front end ([qplace loadgen]) exposes the same knobs through
   cmdliner; this binary exists so benchmark scripts can drive a
   server without pulling in the whole CLI. *)

module Obs = Qp_obs
module Qp_error = Qp_util.Qp_error
module Loadgen = Qp_serve.Loadgen
module Protocol = Qp_serve.Protocol

let usage_fail msg =
  prerr_endline ("loadgen: " ^ msg);
  prerr_endline
    "usage: loadgen [--host H] [--port P] [--connections N] [--duration S]\n\
    \               [--mix solve=8,info=1,health=1] [--alg NAME] [--alpha A]\n\
    \               [--deadline-ms MS] [--pivot-budget N] [--seed N]\n\
    \               [--unique-specs] [--out FILE]\n\
    \       loadgen --server-jobs 1,4 [--connections-sweep 1,4,8]\n\
    \               [--cache-capacity N] [--queue-depth N] ...\n\
    \         (sweep mode: each cell runs against a fresh in-process\n\
    \          server on an ephemeral port; --host/--port are ignored)";
  exit 2

let int_list name v =
  List.map
    (fun part ->
      match int_of_string_opt (String.trim part) with
      | Some i -> i
      | None -> usage_fail (Printf.sprintf "%s: bad integer %S" name part))
    (String.split_on_char ',' v)

let () =
  let cfg = ref Loadgen.default_config in
  let out = ref None in
  let server_jobs = ref [] in
  let connections_sweep = ref [ 1; 4; 8 ] in
  let cache_capacity =
    ref Qp_serve.Server.default_config.Qp_serve.Server.cache_capacity
  in
  let queue_depth =
    ref Qp_serve.Server.default_config.Qp_serve.Server.queue_depth
  in
  let set f v = cfg := f !cfg v in
  let int_arg name v k rest =
    match int_of_string_opt v with
    | Some i -> k i rest
    | None -> usage_fail (Printf.sprintf "%s: bad integer %S" name v)
  in
  let float_arg name v k rest =
    match float_of_string_opt v with
    | Some f -> k f rest
    | None -> usage_fail (Printf.sprintf "%s: bad number %S" name v)
  in
  let rec parse = function
    | [] -> ()
    | "--host" :: v :: rest ->
        set (fun c v -> { c with Loadgen.host = v }) v;
        parse rest
    | "--port" :: v :: rest ->
        int_arg "--port" v
          (fun i rest ->
            set (fun c i -> { c with Loadgen.port = i }) i;
            parse rest)
          rest
    | "--connections" :: v :: rest ->
        int_arg "--connections" v
          (fun i rest ->
            set (fun c i -> { c with Loadgen.connections = i }) i;
            parse rest)
          rest
    | "--duration" :: v :: rest ->
        float_arg "--duration" v
          (fun f rest ->
            set (fun c f -> { c with Loadgen.duration_s = f }) f;
            parse rest)
          rest
    | "--mix" :: v :: rest -> (
        match Loadgen.mix_of_string v with
        | Ok mix ->
            set (fun c m -> { c with Loadgen.mix = m }) mix;
            parse rest
        | Error e -> usage_fail (Qp_error.to_string e))
    | "--alg" :: v :: rest ->
        set
          (fun c v ->
            { c with
              Loadgen.options = { c.Loadgen.options with Protocol.algorithm = v }
            })
          v;
        parse rest
    | "--alpha" :: v :: rest ->
        float_arg "--alpha" v
          (fun f rest ->
            set
              (fun c f ->
                { c with
                  Loadgen.options = { c.Loadgen.options with Protocol.alpha = f }
                })
              f;
            parse rest)
          rest
    | "--deadline-ms" :: v :: rest ->
        int_arg "--deadline-ms" v
          (fun i rest ->
            set
              (fun c i ->
                { c with
                  Loadgen.options =
                    { c.Loadgen.options with Protocol.deadline_ms = Some i }
                })
              i;
            parse rest)
          rest
    | "--pivot-budget" :: v :: rest ->
        int_arg "--pivot-budget" v
          (fun i rest ->
            set
              (fun c i ->
                { c with
                  Loadgen.options =
                    { c.Loadgen.options with Protocol.pivot_budget = Some i }
                })
              i;
            parse rest)
          rest
    | "--seed" :: v :: rest ->
        int_arg "--seed" v
          (fun i rest ->
            set (fun c i -> { c with Loadgen.seed = i }) i;
            parse rest)
          rest
    | "--unique-specs" :: rest ->
        set (fun c () -> { c with Loadgen.unique_specs = true }) ();
        parse rest
    | "--server-jobs" :: v :: rest ->
        server_jobs := int_list "--server-jobs" v;
        parse rest
    | "--connections-sweep" :: v :: rest ->
        connections_sweep := int_list "--connections-sweep" v;
        parse rest
    | "--cache-capacity" :: v :: rest ->
        int_arg "--cache-capacity" v
          (fun i rest ->
            cache_capacity := i;
            parse rest)
          rest
    | "--queue-depth" :: v :: rest ->
        int_arg "--queue-depth" v
          (fun i rest ->
            queue_depth := i;
            parse rest)
          rest
    | "--out" :: v :: rest ->
        out := Some v;
        parse rest
    | flag :: _ -> usage_fail ("unknown flag " ^ flag)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let emit doc_json =
    let doc = Obs.Json.to_string doc_json in
    (match !out with
    | Some path ->
        let oc = open_out path in
        output_string oc doc;
        output_char oc '\n';
        close_out oc
    | None -> ());
    print_endline doc
  in
  let result =
    match !server_jobs with
    | [] -> Result.map Loadgen.report_to_json (Loadgen.run !cfg)
    | jobs ->
        let server_spec =
          match !cfg.Loadgen.spec with
          | Some s -> s
          | None -> Qp_instance.Spec.default
        in
        let base = { !cfg with Loadgen.spec = Some server_spec } in
        let sweep_cfg =
          { Loadgen.base;
            server_spec;
            server_jobs = jobs;
            connections_sweep = !connections_sweep;
            cache_capacity = !cache_capacity;
            queue_depth = !queue_depth
          }
        in
        Result.map Loadgen.sweep_to_json (Loadgen.sweep sweep_cfg)
  in
  match result with
  | Error e ->
      prerr_endline ("loadgen: " ^ Qp_error.to_string e);
      exit (Qp_error.exit_code e)
  | Ok doc -> emit doc
