(* Benchmark & experiment driver.

   Usage:
     dune exec bench/main.exe                 # all experiments (E1-E16, F1-F2)
     dune exec bench/main.exe -- e5 f1        # selected experiments
     dune exec bench/main.exe -- micro        # bechamel microbenchmarks
     dune exec bench/main.exe -- --smoke      # fast subset for CI
     dune exec bench/main.exe -- --jobs N     # worker domains (0 = all cores)
     dune exec bench/main.exe -- --out FILE   # results file (default BENCH_results.json)
     dune exec bench/main.exe -- --wide-events FILE  # one wide event per experiment (JSONL)
     dune exec bench/main.exe -- --scale-budget S    # E19 scaling-series wall budget (s)

   Every experiment run also writes a machine-readable summary: per
   experiment the wall-clock time plus every telemetry series (solver
   pivots, simulated accesses, ...) recorded while it ran.

   Experiments are independent, so with --jobs N > 1 they run
   concurrently on the default domain pool. Each experiment gets its
   own metrics registry and (when parallel) its own output buffer;
   buffers are flushed and results emitted in experiment order, so
   stdout and the JSON payload are byte-identical for every worker
   count — only the wall_s fields move. *)

module Obs = Qp_obs

(* One experiment: fresh enabled registry scoped over the run, so the
   recorded series are exactly the experiment's own, no matter which
   domain executes it or what runs beside it. *)
let run_one ~buffer name =
  let reg = Obs.Metrics.create ~enabled:true () in
  let run () = Obs.Metrics.with_current reg (fun () -> Experiments.by_name name) in
  let ev = Obs.Wide.start ~kind:"bench_experiment" () in
  Obs.Wide.set_str ev "experiment" name;
  let t0 = Obs.Core.now () in
  (try match buffer with Some b -> Qp_par.Io.with_buffer b run | None -> run ()
   with e ->
     Obs.Wide.finish ~outcome:"raised" ev;
     raise e);
  let wall = Obs.Core.now () -. t0 in
  Obs.Wide.set ev "wall_s" (Obs.Json.Float wall);
  Obs.Wide.finish ev;
  let series =
    List.filter_map
      (fun (k, v) ->
        (* qp_apsp_cache_bytes tracks a process-wide cache: its value at
           publish time depends on which experiments ran concurrently,
           so like wall_s it cannot appear in byte-compared payloads. *)
        if v <> 0. && k <> "qp_apsp_cache_bytes" then
          Some (k, Obs.Json.Float v)
        else None)
      (Obs.Metrics.scalar_series reg)
  in
  (* Structured records (qp-scaling/1 cells) are drained here, on the
     domain that ran the experiment; peak RSS is process-wide telemetry
     (the kernel high-water mark), best-effort and absent off Linux.
     Both are excluded — like wall_s — from cross-run byte comparisons. *)
  let records = Experiments.take_records () in
  Obs.Json.Obj
    ([ ("experiment", Obs.Json.String name);
       ("wall_s", Obs.Json.Float wall) ]
    @ (match Obs.Core.max_rss_kb () with
      | Some kb -> [ ("max_rss_kb", Obs.Json.Int kb) ]
      | None -> [])
    @ [ ("metrics", Obs.Json.Obj series) ]
    @ (match records with
      | [] -> []
      | rs -> [ ("records", Obs.Json.List rs) ]))

let write_results path ~jobs results =
  let doc =
    Obs.Json.Obj
      [ ("schema", Obs.Json.String "qp-bench/2");
        ("version", Obs.Json.String Obs.Build_info.version);
        ("jobs", Obs.Json.Int jobs);
        ("experiments", Obs.Json.List results) ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "results written to %s\n" path

(* Bad command lines are user errors, not crashes: one-line diagnostic
   on stderr and the invalid-instance exit code (2), no backtrace. *)
let usage_fail msg =
  prerr_endline ("bench: " ^ msg);
  exit 2

let () =
  print_endline "Quorum Placement in Networks to Minimize Access Delays (PODC'05)";
  print_endline "Experiment reproduction suite - see DESIGN.md / EXPERIMENTS.md";
  let out = ref "BENCH_results.json" in
  let wide = ref None in
  let names = ref [] in
  let micro = ref false in
  let jobs = ref 0 in
  let add ns = names := !names @ ns in
  let rec parse = function
    | [] -> ()
    | "--out" :: path :: rest ->
        out := path;
        parse rest
    | "--out" :: [] -> usage_fail "--out requires a FILE argument"
    | "--wide-events" :: path :: rest ->
        wide := Some path;
        parse rest
    | "--wide-events" :: [] -> usage_fail "--wide-events requires a FILE argument"
    | "--jobs" :: n :: rest | "-j" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 0 -> jobs := j
        | _ -> usage_fail "--jobs requires a non-negative integer");
        parse rest
    | "--jobs" :: [] -> usage_fail "--jobs requires an integer argument"
    | "--scale-budget" :: s :: rest ->
        (match float_of_string_opt s with
        | Some b when b > 0. -> Experiments.scale_budget := b
        | _ -> usage_fail "--scale-budget requires a positive number of seconds");
        parse rest
    | "--scale-budget" :: [] ->
        usage_fail "--scale-budget requires a SECONDS argument"
    | "--smoke" :: rest ->
        add Experiments.smoke;
        parse rest
    | "micro" :: rest ->
        micro := true;
        parse rest
    | "all" :: rest ->
        add (List.map fst Experiments.registry);
        parse rest
    | name :: rest ->
        if not (List.mem_assoc name Experiments.registry) then
          usage_fail ("unknown experiment " ^ name);
        add [ name ];
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let names =
    if !names = [] && not !micro then List.map fst Experiments.registry else !names
  in
  let jobs = if !jobs = 0 then Domain.recommended_domain_count () else !jobs in
  Qp_par.Pool.set_default_jobs jobs;
  (match !wide with
  | None -> ()
  | Some path ->
      Obs.Wide.install (Obs.Trace.to_file path);
      Obs.Wide.header
        [ ("tool", Obs.Json.String "bench"); ("jobs", Obs.Json.Int jobs) ]);
  let results =
    if jobs = 1 then List.map (fun n -> run_one ~buffer:None n) names
    else begin
      (* Concurrent experiments print into per-experiment buffers,
         flushed in order below — same bytes as the sequential path. *)
      let runs =
        Qp_par.Pool.parallel_map (Qp_par.Pool.default ())
          (fun name ->
            let b = Buffer.create 4096 in
            let json = run_one ~buffer:(Some b) name in
            (json, b))
          (Array.of_list names)
      in
      Array.iter (fun (_, b) -> print_string (Buffer.contents b)) runs;
      Array.to_list (Array.map fst runs)
    end
  in
  if !micro then Micro.run ();
  if results <> [] then write_results !out ~jobs results;
  Obs.Wide.uninstall ()
