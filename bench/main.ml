(* Benchmark & experiment driver.

   Usage:
     dune exec bench/main.exe                 # all experiments (E1-E16, F1-F2)
     dune exec bench/main.exe -- e5 f1        # selected experiments
     dune exec bench/main.exe -- micro        # bechamel microbenchmarks
     dune exec bench/main.exe -- --smoke      # fast subset for CI
     dune exec bench/main.exe -- --out FILE   # results file (default BENCH_results.json)

   Every experiment run also writes a machine-readable summary: per
   experiment the wall-clock time plus the change in every telemetry
   series (solver pivots, simulated accesses, ...) recorded while it
   ran. *)

module Obs = Qp_obs

(* Change in each scalar series across an experiment; series absent
   before count from zero, unchanged series are dropped. *)
let series_delta before after =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) before;
  List.filter_map
    (fun (k, v) ->
      let d = v -. Option.value ~default:0. (Hashtbl.find_opt tbl k) in
      if d <> 0. then Some (k, Obs.Json.Float d) else None)
    after

let run_one name f =
  let before = Obs.Metrics.scalar_series Obs.Metrics.default in
  let t0 = Obs.Core.now () in
  f ();
  let wall = Obs.Core.now () -. t0 in
  let after = Obs.Metrics.scalar_series Obs.Metrics.default in
  Obs.Json.Obj
    [ ("experiment", Obs.Json.String name);
      ("wall_s", Obs.Json.Float wall);
      ("metrics", Obs.Json.Obj (series_delta before after)) ]

let write_results path results =
  let doc =
    Obs.Json.Obj
      [ ("schema", Obs.Json.String "qp-bench/1");
        ("version", Obs.Json.String Obs.Build_info.version);
        ("experiments", Obs.Json.List results) ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "results written to %s\n" path

let () =
  print_endline "Quorum Placement in Networks to Minimize Access Delays (PODC'05)";
  print_endline "Experiment reproduction suite - see DESIGN.md / EXPERIMENTS.md";
  let out = ref "BENCH_results.json" in
  let names = ref [] in
  let micro = ref false in
  let add ns = names := !names @ ns in
  let rec parse = function
    | [] -> ()
    | "--out" :: path :: rest ->
        out := path;
        parse rest
    | "--out" :: [] -> failwith "--out requires a FILE argument"
    | "--smoke" :: rest ->
        add Experiments.smoke;
        parse rest
    | "micro" :: rest ->
        micro := true;
        parse rest
    | "all" :: rest ->
        add (List.map fst Experiments.registry);
        parse rest
    | name :: rest ->
        if not (List.mem_assoc name Experiments.registry) then
          failwith ("unknown experiment " ^ name);
        add [ name ];
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let names =
    if !names = [] && not !micro then List.map fst Experiments.registry else !names
  in
  Obs.Metrics.set_enabled Obs.Metrics.default true;
  let results = List.map (fun n -> run_one n (fun () -> Experiments.by_name n)) names in
  if !micro then Micro.run ();
  if results <> [] then write_results !out results
