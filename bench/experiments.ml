(* Experiment suite regenerating every quantitative claim of the paper
   (see DESIGN.md section 4 for the experiment index and EXPERIMENTS.md
   for recorded results). Each function prints one or more tables. *)

module Rng = Qp_util.Rng
module Stats = Qp_util.Stats

(* Experiments may run concurrently under --jobs N: every print below
   goes through the domain-local sink of [Qp_par.Io], so an experiment
   running on a worker domain writes into its own buffer (flushed by
   the driver in experiment order) while a sequential run still prints
   straight to stdout — byte-identical output either way. *)
let print_endline = Qp_par.Io.print_endline
let print_newline = Qp_par.Io.print_newline

module Printf = struct
  let sprintf = Stdlib.Printf.sprintf
  let printf fmt = Qp_par.Io.printf fmt
end

module Table = struct
  include Qp_util.Table

  let print t = Qp_par.Io.print_string (Qp_util.Table.render t)
end
module Metric = Qp_graph.Metric
module Generators = Qp_graph.Generators
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Grid_qs = Qp_quorum.Grid_qs
module Majority_qs = Qp_quorum.Majority_qs
module Simple_qs = Qp_quorum.Simple_qs
module Sched = Qp_sched.Sched
module Sched_exact = Qp_sched.Sched_exact
module Sched_heuristics = Qp_sched.Sched_heuristics
module Reduction = Qp_sched.Reduction
open Qp_place

let section title =
  Printf.printf "\n=== %s ===\n\n" title

(* Structured result records (the qp-scaling/1 cells of E19) destined
   for the experiment's entry in BENCH_results.json. Kept in a
   domain-local list so concurrent experiments under --jobs N cannot
   interleave; the bench driver drains them right after each
   experiment returns, on the same domain that ran it. *)
let records_key : Qp_obs.Json.t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let add_record r =
  let rs = Domain.DLS.get records_key in
  rs := r :: !rs

let take_records () =
  let rs = Domain.DLS.get records_key in
  let out = List.rev !rs in
  rs := [];
  out

(* Wall budget for the E19 scaling series. CI's scaling-smoke job runs
   with a reduced budget via --scale-budget; the default is generous
   enough to reach the 10x cell on any machine that can run the suite. *)
let scale_budget = ref 60.

(* ------------------------------------------------------------------ *)
(* Shared instance builders                                            *)
(* ------------------------------------------------------------------ *)

(* Both builders delegate to the shared instance layer; the bench
   suite's geometric topologies historically use radius 0.45 (the CLI
   default is 0.4), hence the explicit radius suffix. *)
let topology name rng n =
  let name = if name = "geometric" then "geometric:0.45" else name in
  match Qp_instance.Spec.build_topology name n rng with
  | Ok g -> g
  | Error e -> failwith (Qp_util.Qp_error.to_string e)

let uniform_problem ~system ~graph ~slack =
  Qp_instance.Spec.uniform_problem ~graph ~system ~slack

(* Registry dispatch for the experiment solvers. Experiments whose rng
   is threaded through their own sampling stream (E2, E5's random
   baseline) keep direct calls: the registry's seed-based params
   cannot reproduce a mid-stream draw. *)
let solve_via name ?candidates ?(source = 0) problem =
  let solver = Solver.find_exn name in
  let params = { Solver.default_params with Solver.candidates; source } in
  match solver.Solver.solve params problem with
  | Ok o -> Some o
  | Error (Qp_util.Qp_error.Infeasible _) -> None
  | Error e -> failwith (Qp_util.Qp_error.to_string e)

let detail_or_nan o key =
  match Outcome.detail o key with Some v -> v | None -> nan

(* ------------------------------------------------------------------ *)
(* E1 — Theorem 1.2: QPP via LP rounding, alpha sweep                  *)
(* ------------------------------------------------------------------ *)

(* Efficient alpha sweep: solve the SSQPP LP once per candidate source
   and re-filter/round per alpha. *)
let qpp_sweep problem alphas =
  let n = Problem.n_nodes problem in
  let lps =
    List.filter_map
      (fun v0 ->
        let s = Problem.ssqpp_of_qpp problem v0 in
        match Lp_formulation.solve s with
        | None -> None
        | Some sol -> Some (v0, s, sol))
      (List.init n (fun v -> v))
  in
  if lps = [] then None
  else begin
    let lower_bound =
      List.fold_left
        (fun acc (v0, _, sol) ->
          Float.min acc
            ((Metric.average_distance problem.Problem.metric v0
             +. sol.Lp_formulation.z_star)
            /. Relay.bound))
        infinity lps
    in
    let per_alpha =
      List.map
        (fun alpha ->
          let best =
            List.fold_left
              (fun acc (v0, s, sol) ->
                let r = Rounding.round_filtered s (Filtering.apply ~alpha sol) in
                let obj = Delay.avg_max_delay problem r.Rounding.placement in
                match acc with
                | Some (best_obj, _, _) when best_obj <= obj -> acc
                | _ -> Some (obj, v0, r))
              None lps
          in
          match best with
          | None -> assert false
          | Some (obj, v0, r) -> (alpha, obj, v0, r))
        alphas
    in
    Some (lower_bound, per_alpha)
  end

let e1 () =
  section "E1  Theorem 1.2: average max-delay within 5a/(a-1) of OPT, load within (a+1)cap";
  let tbl =
    Table.create
      [ ("system", Table.Left); ("topology", Table.Left); ("n", Table.Right);
        ("alpha", Table.Right); ("delay", Table.Right); ("LB on OPT", Table.Right);
        ("delay/LB", Table.Right); ("bound", Table.Right); ("load/cap", Table.Right);
        ("load bound", Table.Right) ]
  in
  let alphas = [ 1.5; 2.; 3.; 4. ] in
  let first_group = ref true in
  List.iter
    (fun (sys_name, system) ->
      List.iter
        (fun topo ->
          let rng = Rng.create 11 in
          let n = 12 in
          let graph = topology topo rng n in
          let problem = uniform_problem ~system ~graph ~slack:1.0 in
          match qpp_sweep problem alphas with
          | None -> Printf.printf "(%s on %s: infeasible)\n" sys_name topo
          | Some (lb, rows) ->
              if not !first_group then Table.add_separator tbl;
              first_group := false;
              List.iter
                (fun (alpha, obj, _v0, r) ->
                  Table.add_rowf tbl "%s|%s|%d|%.1f|%.4f|%.4f|%.2f|%.2f|%.2f|%.2f"
                    sys_name topo n alpha obj lb (obj /. lb)
                    (Relay.bound *. alpha /. (alpha -. 1.))
                    (Placement.max_violation problem r.Rounding.placement)
                    (alpha +. 1.))
                rows)
        [ "waxman"; "geometric" ])
    [ ("grid 2x2", Grid_qs.make 2); ("majority 3/5", Majority_qs.make ~n:5 ~t:3) ];
  Table.print tbl;
  print_endline
    "Claim: delay/LB stays below the bound column; load/cap below its bound. The\n\
     measured ratios are far smaller than the worst-case guarantees, as expected."

(* ------------------------------------------------------------------ *)
(* E2 — Lemma 3.1: relay-via-v0 within 5x                              *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2  Lemma 3.1: routing every access via the best single node costs <= 5x";
  let ratios = ref [] in
  let worst = ref (0., "") in
  let rng = Rng.create 17 in
  let systems =
    [ ("triangle", Simple_qs.triangle ()); ("grid 2x2", Grid_qs.make 2);
      ("wheel 6", Simple_qs.wheel 6); ("majority 3/5", Majority_qs.make ~n:5 ~t:3) ]
  in
  List.iter
    (fun (name, system) ->
      for _ = 1 to 60 do
        let n = 6 + Rng.int rng 10 in
        let graph = topology (if Rng.bool rng then "waxman" else "geometric") rng n in
        let problem = uniform_problem ~system ~graph ~slack:(1. +. Rng.float rng 2.) in
        match Baselines.random rng problem with
        | None -> ()
        | Some f ->
            let a = Relay.analyze problem f in
            ratios := a.Relay.ratio :: !ratios;
            if a.Relay.ratio > fst !worst then worst := (a.Relay.ratio, name)
      done)
    systems;
  let arr = Array.of_list !ratios in
  let s = Stats.summarize arr in
  let tbl =
    Table.create
      [ ("samples", Table.Right); ("mean ratio", Table.Right); ("p95", Table.Right);
        ("max", Table.Right); ("bound", Table.Right) ]
  in
  Table.add_rowf tbl "%d|%.3f|%.3f|%.3f (on %s)|%.0f" s.Stats.n s.Stats.mean s.Stats.p95
    (fst !worst) (snd !worst) Relay.bound;
  Table.print tbl;
  print_endline "Claim: the max column never exceeds 5 (it is typically below 2)."

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 3.6: scheduling <-> SSQPP reduction                    *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3  Theorem 3.6: 1|prec|sum wjCj reduces to SSQPP (cost correspondence)";
  let tbl =
    Table.create
      [ ("unit-time", Table.Right); ("unit-weight", Table.Right); ("edges", Table.Right);
        ("sched OPT (DP)", Table.Right); ("SSQPP OPT -> cost", Table.Right);
        ("match", Table.Left); ("WSPT", Table.Right); ("topo", Table.Right) ]
  in
  let rng = Rng.create 23 in
  for _ = 1 to 8 do
    let nt = 3 + Rng.int rng 3 in
    let nw = 2 + Rng.int rng 3 in
    let sched = Sched.random_woeginger rng ~n_unit_time:nt ~n_unit_weight:nw ~edge_prob:0.4 in
    let opt, _ = Sched_exact.solve sched in
    let r = Reduction.make sched in
    let problem =
      Problem.make_qpp
        ~metric:(Metric.of_graph r.Reduction.graph)
        ~capacities:r.Reduction.capacities ~system:r.Reduction.system
        ~strategy:r.Reduction.strategy ()
    in
    let s = Problem.ssqpp_of_qpp problem r.Reduction.v0 in
    match Exact.ssqpp_brute_force s with
    | None -> Printf.printf "(unexpected infeasible reduction)\n"
    | Some (delay, _) ->
        let mapped = Reduction.cost_of_delay r delay in
        let edges = List.length sched.Sched.prec in
        Table.add_rowf tbl "%d|%d|%d|%.1f|%.4f|%s|%.1f|%.1f" nt nw edges opt mapped
          (if Float.abs (mapped -. opt) < 1e-6 then "yes" else "NO")
          (Sched.cost sched (Sched_heuristics.wspt sched))
          (Sched.cost sched (Sched_heuristics.topological sched))
  done;
  Table.print tbl;
  (* Companion table: the scheduling substrate's own approximation
     stack on general (positive-time) instances. *)
  let tbl2 =
    Table.create ~title:"scheduling solvers on general instances (positive times)"
      [ ("n", Table.Right); ("edges", Table.Right); ("DP OPT", Table.Right);
        ("Sidney (2-approx)", Table.Right); ("ratio", Table.Right);
        ("WSPT", Table.Right); ("topo", Table.Right) ]
  in
  for _ = 1 to 6 do
    let n = 5 + Rng.int rng 6 in
    let time = Array.init n (fun _ -> 1. +. float_of_int (Rng.int rng 4)) in
    let weight = Array.init n (fun _ -> float_of_int (Rng.int rng 6)) in
    let prec = ref [] in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if Rng.uniform rng < 0.3 then prec := (a, b) :: !prec
      done
    done;
    let t = Sched.make ~time ~weight ~prec:!prec in
    let opt, _ = Sched_exact.solve t in
    let sid = Sched.cost t (Qp_sched.Sidney.schedule t) in
    Table.add_rowf tbl2 "%d|%d|%.1f|%.1f|%.3f|%.1f|%.1f" n (List.length !prec) opt sid
      (if opt > 0. then sid /. opt else 1.)
      (Sched.cost t (Sched_heuristics.wspt t))
      (Sched.cost t (Sched_heuristics.topological t))
  done;
  Table.print tbl2;
  print_endline
    "Claim: the SSQPP optimum maps back to exactly the scheduling optimum (match =\n\
     yes), certifying the NP-hardness reduction end to end. The Sidney\n\
     decomposition stays within its proven 2x (usually much closer)."

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 3.7: SSQPP rounding, alpha sweep                       *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4  Theorem 3.7: SSQPP delay <= a/(a-1) Z*, load <= (a+1)cap";
  let tbl =
    Table.create
      [ ("alpha", Table.Right); ("Z*", Table.Right); ("delay", Table.Right);
        ("delay/Z*", Table.Right); ("bound", Table.Right); ("vs exact OPT", Table.Right);
        ("load/cap", Table.Right); ("load bound", Table.Right) ]
  in
  let rng = Rng.create 29 in
  let graph = topology "geometric" rng 13 in
  let system = Grid_qs.make 3 in
  let problem = uniform_problem ~system ~graph ~slack:1.0 in
  let s = Problem.ssqpp_of_qpp problem 0 in
  (match (Lp_formulation.solve s, Exact.ssqpp_uniform_dp s) with
  | Some sol, Some (opt, _) ->
      List.iter
        (fun alpha ->
          let r = Rounding.round_filtered s (Filtering.apply ~alpha sol) in
          Table.add_rowf tbl "%.2f|%.4f|%.4f|%.3f|%.2f|%.3f|%.2f|%.2f" alpha
            sol.Lp_formulation.z_star r.Rounding.delay
            (r.Rounding.delay /. sol.Lp_formulation.z_star)
            (alpha /. (alpha -. 1.))
            (r.Rounding.delay /. opt)
            r.Rounding.load_violation (alpha +. 1.))
        [ 1.25; 1.5; 2.; 3.; 4.; 8. ];
      Table.print tbl;
      Printf.printf "Exact optimum (subset DP): %.4f\n" opt
  | _ -> print_endline "(infeasible instance)");
  print_endline
    "Claim: delay/Z* <= bound for every alpha; larger alpha trades capacity blow-up\n\
     for delay. 'vs exact OPT' shows the true ratio against the DP optimum."

(* ------------------------------------------------------------------ *)
(* E5 — Theorem 1.3 / B.1: optimal grid layouts                        *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5  Theorem B.1: the concentric grid layout is optimal";
  let tbl =
    Table.create
      [ ("k", Table.Right); ("n", Table.Right); ("concentric", Table.Right);
        ("subset-DP OPT", Table.Right); ("optimal?", Table.Left);
        ("LP rounding (a=2)", Table.Right); ("greedy", Table.Right);
        ("random", Table.Right) ]
  in
  let rng = Rng.create 37 in
  List.iter
    (fun k ->
      let system = Grid_qs.make k in
      let n = (k * k) + 4 in
      let graph = topology "geometric" rng n in
      let problem = uniform_problem ~system ~graph ~slack:1.0 in
      let s = Problem.ssqpp_of_qpp problem 0 in
      let concentric =
        match Grid_layout.place s with Some l -> l.Grid_layout.delay | None -> nan
      in
      let dp =
        match Exact.ssqpp_uniform_dp s with Some (c, _) -> c | None -> nan
      in
      let lp =
        if k <= 3 then
          match Rounding.solve ~alpha:2. s with
          | Some r -> Printf.sprintf "%.4f" r.Rounding.delay
          | None -> "-"
        else "(skipped)"
      in
      let greedy =
        match solve_via "greedy" problem with
        | Some o -> Delay.ssqpp_delay s o.Outcome.placement
        | None -> nan
      in
      let random =
        match Baselines.random rng problem with
        | Some f -> Delay.ssqpp_delay s f
        | None -> nan
      in
      Table.add_rowf tbl "%d|%d|%.4f|%.4f|%s|%s|%.4f|%.4f" k n concentric dp
        (if Float.abs (concentric -. dp) < 1e-9 then "yes" else "NO")
        lp greedy random)
    [ 2; 3; 4 ];
  Table.print tbl;
  print_endline
    "Claim: concentric = subset-DP optimum at every k among capacity-respecting\n\
     placements; greedy/random are no better. The LP-rounding column may dip BELOW\n\
     the optimum because Theorem 3.7 lets it overload nodes by up to 3x."

(* ------------------------------------------------------------------ *)
(* E6 — Eq. 19: Majority closed form                                   *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6  Eq. (19): Majority delay is placement-invariant and in closed form";
  let tbl =
    Table.create
      [ ("n", Table.Right); ("t", Table.Right); ("closed form", Table.Right);
        ("direct eval", Table.Right); ("|diff|", Table.Right);
        ("spread over 10 shuffles", Table.Right) ]
  in
  let rng = Rng.create 41 in
  List.iter
    (fun (n, t) ->
      let system = Majority_qs.make ~n ~t in
      let nodes = n + 3 in
      let graph = topology "waxman" rng nodes in
      let problem = uniform_problem ~system ~graph ~slack:1.0 in
      let s = Problem.ssqpp_of_qpp problem 0 in
      match Majority_layout.place s with
      | None -> ()
      | Some (closed, f) ->
          let direct = Delay.ssqpp_delay s f in
          let spread = ref 0. in
          for _ = 1 to 10 do
            let perm = Rng.permutation rng n in
            let g = Array.init n (fun u -> f.(perm.(u))) in
            spread := Float.max !spread (Float.abs (Delay.ssqpp_delay s g -. direct))
          done;
          Table.add_rowf tbl "%d|%d|%.4f|%.4f|%.1e|%.1e" n t closed direct
            (Float.abs (closed -. direct))
            !spread)
    [ (5, 3); (7, 4); (9, 5); (11, 6); (13, 7) ];
  Table.print tbl;
  print_endline
    "Claim: closed form = direct evaluation, and permuting elements over the same\n\
     nodes never changes the delay (spread ~ 0)."

(* ------------------------------------------------------------------ *)
(* E7 — Theorem 5.1: total delay via GAP                               *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7  Theorem 5.1: total-delay placement, cost <= OPT with load <= 2cap";
  let tbl =
    Table.create
      [ ("system", Table.Left); ("n", Table.Right); ("GAP LP", Table.Right);
        ("rounded cost", Table.Right); ("exact OPT", Table.Right);
        ("cost <= OPT", Table.Left); ("load/cap", Table.Right); ("bound", Table.Right) ]
  in
  let rng = Rng.create 43 in
  List.iter
    (fun (name, system) ->
      let n = 11 in
      let graph = topology "geometric" rng n in
      let problem = uniform_problem ~system ~graph ~slack:1.0 in
      match solve_via "total" problem with
      | None -> Printf.printf "(%s infeasible)\n" name
      | Some o ->
          let opt =
            match Total_delay.exact_uniform problem with
            | Some (c, _) -> c
            | None -> nan
          in
          Table.add_rowf tbl "%s|%d|%.4f|%.4f|%.4f|%s|%.2f|2" name n
            (detail_or_nan o "lp_cost") o.Outcome.objective opt
            (if o.Outcome.objective <= opt +. 1e-9 then "yes" else "NO")
            o.Outcome.load_violation)
    [ ("triangle", Simple_qs.triangle ()); ("grid 2x2", Grid_qs.make 2);
      ("grid 3x3", Grid_qs.make 3); ("majority 4/7", Majority_qs.make ~n:7 ~t:4) ];
  Table.print tbl;
  print_endline
    "Claim: rounded cost never exceeds the capacity-respecting optimum, at the\n\
     price of at most doubling a node's load."

(* ------------------------------------------------------------------ *)
(* F1 — Claim A.1: integrality gaps                                    *)
(* ------------------------------------------------------------------ *)

(* Closed form of the LP optimum on single-quorum unit-capacity
   instances: each node carries exactly 1/n of every element, so
   Z* = mean distance (cross-checked against the simplex for small
   sizes). *)
let single_quorum_lp_closed_form (s : Problem.ssqpp) =
  Metric.average_distance s.Problem.metric s.Problem.v0

let f1 () =
  section "F1  Claim A.1: integrality gap of LP (9)-(14)";
  let tbl =
    Table.create ~title:"(a) general metric (star with one far node, M = 1000)"
      [ ("n", Table.Right); ("LP (simplex)", Table.Right); ("LP (closed)", Table.Right);
        ("integral OPT", Table.Right); ("gap", Table.Right); ("n (ref)", Table.Right) ]
  in
  List.iter
    (fun n ->
      let s = Integrality.path_instance ~n ~m:1000. in
      let r = Integrality.measure s in
      Table.add_rowf tbl "%d|%.2f|%.2f|%.0f|%.2f|%d" n r.Integrality.lp_value
        (single_quorum_lp_closed_form s) r.Integrality.integral_opt r.Integrality.gap n)
    [ 4; 6; 8; 10; 12 ];
  Table.print tbl;
  let tbl2 =
    Table.create ~title:"(b) Figure-1 unweighted graph (gap -> Theta(sqrt n))"
      [ ("k", Table.Right); ("n=k^2", Table.Right); ("LP", Table.Right);
        ("integral OPT", Table.Right); ("gap", Table.Right); ("gap/k", Table.Right) ]
  in
  List.iter
    (fun k ->
      let s = Integrality.figure1_instance k in
      let lp, opt =
        if k <= 5 then begin
          let r = Integrality.measure s in
          (r.Integrality.lp_value, r.Integrality.integral_opt)
        end
        else (single_quorum_lp_closed_form s, float_of_int k)
      in
      Table.add_rowf tbl2 "%d|%d|%.4f|%.0f|%.2f|%.3f" k (k * k) lp opt (opt /. lp)
        (opt /. lp /. float_of_int k))
    [ 2; 3; 4; 5; 6; 8; 10; 12 ];
  Table.print tbl2;
  print_endline
    "Claim: (a) gap approaches n as M >> n; (b) LP tends to 3/2 while the integral\n\
     optimum is k, so the gap grows as ~2k/3 = Theta(sqrt n). (k <= 5 rows also\n\
     cross-check the simplex against the closed form.)"

(* ------------------------------------------------------------------ *)
(* F2 — Figure 2: the concentric layout pattern                        *)
(* ------------------------------------------------------------------ *)

let f2 () =
  section "F2  Figure 2 view: concentric matrix of tau-ranks (Section 4.1 strategy)";
  List.iter
    (fun k ->
      Printf.printf "k = %d (cell value = rank of its tau; 1 = farthest distance):\n" k;
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          Printf.printf "%4d" (Grid_layout.rank_of_cell k i j)
        done;
        print_newline ()
      done;
      print_newline ())
    [ 3; 4; 5 ];
  print_endline
    "Reading: the top-left l x l square always holds the l^2 largest distances —\n\
     the A/B/C/D partition argument of Appendix B (Figure 2) shows any optimal\n\
     layout can be massaged into this pattern without increasing cost."

(* ------------------------------------------------------------------ *)
(* E8 — simulation vs analytic model                                   *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8  Discrete-event simulation vs the paper's analytic delay model";
  let tbl =
    Table.create
      [ ("system", Table.Left); ("protocol", Table.Left); ("analytic", Table.Right);
        ("simulated", Table.Right); ("rel. error", Table.Right);
        ("accesses", Table.Right) ]
  in
  let rng = Rng.create 47 in
  let graph = topology "waxman" rng 14 in
  List.iter
    (fun (name, system) ->
      let problem = uniform_problem ~system ~graph ~slack:1.3 in
      match solve_via "lp" ~candidates:[ 0; 1; 2 ] problem with
      | None -> ()
      | Some r ->
          List.iter
            (fun (pname, protocol) ->
              let cfg =
                Qp_sim.Access_sim.default_config ~problem
                  ~placement:r.Outcome.placement
              in
              let report =
                Qp_sim.Access_sim.run
                  { cfg with Qp_sim.Access_sim.protocol; accesses_per_client = 3000 }
              in
              Table.add_rowf tbl "%s|%s|%.4f|%.4f|%.3f%%|%d" name pname
                report.Qp_sim.Access_sim.analytic_delay
                report.Qp_sim.Access_sim.mean_delay
                (100. *. report.Qp_sim.Access_sim.relative_error)
                report.Qp_sim.Access_sim.n_accesses)
            [ ("parallel", Qp_sim.Access_sim.Parallel);
              ("sequential", Qp_sim.Access_sim.Sequential) ])
    [ ("grid 2x2", Grid_qs.make 2); ("majority 3/5", Majority_qs.make ~n:5 ~t:3) ];
  Table.print tbl;
  print_endline
    "Claim: with one-way measurement, zero service time and no jitter, the\n\
     simulator reproduces Avg Delta_f / Avg Gamma_f to within sampling noise,\n\
     validating the analytic model the optimization targets."

(* ------------------------------------------------------------------ *)
(* E9 — load/delay tradeoff ablation                                   *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9  Ablation: the load/delay tension (Section 1.1) and Section-6 extensions";
  let rng = Rng.create 53 in
  let n = 13 in
  let graph = topology "geometric" rng n in
  let system = Grid_qs.make 3 in
  let tbl =
    Table.create ~title:"capacity slack sweep (alpha = 2, Theorem 1.2 placement)"
      [ ("cap/load", Table.Right); ("delay", Table.Right); ("nodes used", Table.Right);
        ("max load/cap", Table.Right) ]
  in
  List.iter
    (fun slack ->
      let problem = uniform_problem ~system ~graph ~slack in
      match solve_via "lp" ~candidates:[ 0; 4; 8 ] problem with
      | None -> Table.add_rowf tbl "%.1f|infeasible|-|-" slack
      | Some r ->
          Table.add_rowf tbl "%.1f|%.4f|%d|%.2f" slack r.Outcome.objective
            r.Outcome.nodes_used r.Outcome.load_violation)
    [ 1.0; 1.5; 2.; 4.; 9. ];
  Table.print tbl;
  (* Section 6 extension: non-uniform client rates. *)
  let tbl2 =
    Table.create ~title:"heterogeneous client rates (Section 6): hot client pulls quorums"
      [ ("rates", Table.Left); ("delay (weighted)", Table.Right);
        ("hot client delay", Table.Right); ("worst client delay", Table.Right) ]
  in
  let hot = 0 in
  List.iter
    (fun (label, rates) ->
      let strategy = Strategy.uniform system in
      let loads = Strategy.loads system strategy in
      let max_load = Array.fold_left Float.max 0. loads in
      let capacities = Array.make n (1.5 *. max_load) in
      let problem =
        Problem.of_graph_qpp ~graph ~capacities ~system ~strategy ?client_rates:rates ()
      in
      match solve_via "lp" ~candidates:[ 0; 4; 8 ] problem with
      | None -> ()
      | Some r ->
          let f = r.Outcome.placement in
          let worst =
            Array.fold_left Float.max 0. (Delay.all_client_max_delays problem f)
          in
          Table.add_rowf tbl2 "%s|%.4f|%.4f|%.4f" label r.Outcome.objective
            (Delay.client_max_delay problem f hot)
            worst)
    [
      ("uniform", None);
      ("client 0 does 10x", Some (Array.init n (fun v -> if v = hot then 10. else 1.)));
      ("client 0 does 100x", Some (Array.init n (fun v -> if v = hot then 100. else 1.)));
    ];
  Table.print tbl2;
  print_endline
    "Claim: more capacity headroom collapses quorums onto fewer nodes (lower delay,\n\
     higher per-node load); skewed client rates drag the placement toward the hot\n\
     client, cutting its delay sharply while the worst client's delay may grow."

(* ------------------------------------------------------------------ *)
(* E10 — construction comparison on one WAN                            *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10  Quorum constructions compared on one WAN (placement: Thm 1.2, a=2)";
  let tbl =
    Table.create
      [ ("construction", Table.Left); ("|U|", Table.Right); ("|Q|", Table.Right);
        ("quorum size", Table.Right); ("system load", Table.Right);
        ("resilience", Table.Right); ("fail pr (p=0.1)", Table.Right);
        ("avg max-delay", Table.Right); ("avg total-delay", Table.Right) ]
  in
  let rng = Rng.create 59 in
  let n = 16 in
  let graph = topology "waxman" rng n in
  List.iter
    (fun (name, system) ->
      let strategy = Strategy.uniform system in
      let problem = uniform_problem ~system ~graph ~slack:1.4 in
      match solve_via "lp" ~candidates:[ 0; 5; 10 ] problem with
      | None -> Printf.printf "(%s infeasible)\n" name
      | Some r ->
          let f = r.Outcome.placement in
          let sizes = Array.map Array.length (Quorum.quorums system) in
          let fail =
            if Quorum.universe system <= 22 then
              Printf.sprintf "%.4f" (Qp_quorum.Availability.failure_probability system 0.1)
            else "-"
          in
          Table.add_rowf tbl "%s|%d|%d|%d-%d|%.3f|%d|%s|%.4f|%.4f" name
            (Quorum.universe system) (Quorum.n_quorums system)
            (Array.fold_left min sizes.(0) sizes)
            (Array.fold_left max sizes.(0) sizes)
            (Strategy.system_load system strategy)
            (Qp_quorum.Availability.resilience system)
            fail (Delay.avg_max_delay problem f) (Delay.avg_total_delay problem f))
    [
      ("singleton", Simple_qs.singleton 1 0);
      ("star 9", Simple_qs.star 9);
      ("wheel 9", Simple_qs.wheel 9);
      ("grid 3x3", Grid_qs.make 3);
      ("majority 3/5", Majority_qs.make ~n:5 ~t:3);
      ("FPP q=2 (Maekawa)", Qp_quorum.Fpp_qs.make 2);
      ("tree depth 2", Qp_quorum.Tree_qs.make 2);
      ("walls [1;2;3]", Qp_quorum.Walls_qs.make [ 1; 2; 3 ]);
      ("voting [3;1x6]", Qp_quorum.Voting_qs.make [| 3; 1; 1; 1; 1; 1; 1 |]);
    ];
  Table.print tbl;
  print_endline
    "Reading: the classic menagerie on equal footing — low-load constructions\n\
     (grid, FPP) pay with larger quorums and higher delay; the singleton is\n\
     delay-optimal but has load 1 and resilience 0 (the paper's Section 2\n\
     critique of delay-only optimization, quantified)."

(* ------------------------------------------------------------------ *)
(* E11 — fault injection                                               *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11  Fault injection: availability under node failures, with retries";
  let rng = Rng.create 61 in
  let n = 12 in
  let graph = topology "geometric" rng n in
  let system = Majority_qs.make ~n:5 ~t:3 in
  let problem = uniform_problem ~system ~graph ~slack:1.2 in
  let placement =
    match solve_via "lp" ~candidates:[ 0; 6 ] problem with
    | Some r -> r.Outcome.placement
    | None -> failwith "infeasible"
  in
  let tbl =
    Table.create ~title:"Static (iid per attempt) failures, majority 3-of-5"
      [ ("p fail", Table.Right); ("attempts", Table.Right);
        ("availability", Table.Right); ("iid prediction", Table.Right);
        ("mean delay (ok)", Table.Right); ("mean attempts", Table.Right) ]
  in
  List.iter
    (fun (p, attempts) ->
      let base =
        Qp_sim.Fault_sim.default_config ~problem ~placement
          ~failure_model:(Qp_sim.Fault_sim.Static p)
      in
      let cfg =
        {
          base with
          Qp_sim.Fault_sim.retry =
            { base.Qp_sim.Fault_sim.retry with Qp_runtime.Retry.max_attempts = attempts };
          accesses_per_client = 1500;
        }
      in
      let r = Qp_sim.Fault_sim.run cfg in
      Table.add_rowf tbl "%.2f|%d|%.4f|%.4f|%.3f|%.2f" p attempts
        r.Qp_sim.Fault_sim.availability r.Qp_sim.Fault_sim.predicted_success
        r.Qp_sim.Fault_sim.mean_delay_success r.Qp_sim.Fault_sim.mean_attempts)
    [ (0.05, 1); (0.05, 3); (0.2, 1); (0.2, 3); (0.4, 1); (0.4, 3); (0.4, 5) ];
  Table.print tbl;
  let tbl2 =
    Table.create ~title:"Dynamic crash/repair (correlated), same steady-state availability"
      [ ("mtbf/mttr", Table.Right); ("node avail", Table.Right);
        ("availability", Table.Right); ("iid reference", Table.Right) ]
  in
  List.iter
    (fun (mtbf, mttr) ->
      let cfg =
        {
          (Qp_sim.Fault_sim.default_config ~problem ~placement
             ~failure_model:(Qp_sim.Fault_sim.Dynamic { mtbf; mttr })) with
          Qp_sim.Fault_sim.accesses_per_client = 1500;
        }
      in
      let r = Qp_sim.Fault_sim.run cfg in
      Table.add_rowf tbl2 "%.0f/%.0f|%.3f|%.4f|%.4f" mtbf mttr (mtbf /. (mtbf +. mttr))
        r.Qp_sim.Fault_sim.availability r.Qp_sim.Fault_sim.predicted_success)
    [ (95., 5.); (80., 20.); (60., 40.) ];
  Table.print tbl2;
  print_endline
    "Claims: static-model availability matches the iid closed form; retries push\n\
     it toward 1; the correlated crash/repair process is WORSE than the iid\n\
     reference at equal node availability (retries re-hit the same down node)."

(* ------------------------------------------------------------------ *)
(* E12 — the Related-Work design problems                              *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "E12  Quorum DESIGN (Related Work) vs quorum PLACEMENT (this paper)";
  let tbl =
    Table.create ~title:"design objectives on random WANs (universe = vertex set)"
      [ ("n", Table.Right); ("minmax radius (exact)", Table.Right);
        ("minmax of ball design", Table.Right); ("Lin median cost", Table.Right);
        ("minavg lower bound", Table.Right); ("2x LB", Table.Right) ]
  in
  let module Design = Qp_design.Design in
  let rng = Rng.create 67 in
  List.iter
    (fun n ->
      let graph = topology "waxman" rng n in
      let metric = Qp_graph.Metric.of_graph graph in
      let radius = Design.minmax_optimal_radius metric in
      let ball = Design.minmax_optimal_design metric in
      let _, lin = Design.lin_median_design metric in
      let lb = Design.minavg_lower_bound metric in
      Table.add_rowf tbl "%d|%.4f|%.4f|%.4f|%.4f|%.4f" n radius
        (Design.eccentricity_of_design metric ball)
        (Design.mean_delay_of_design metric lin)
        lb (2. *. lb))
    [ 8; 12; 16; 20 ];
  Table.print tbl;
  (* The paper's critique: the Lin/median design has system load 1. *)
  let rng = Rng.create 68 in
  let graph = topology "waxman" rng 12 in
  let metric = Qp_graph.Metric.of_graph graph in
  let _, lin = Design.lin_median_design metric in
  let lin_load = Strategy.system_load lin (Strategy.uniform lin) in
  let system = Grid_qs.make 3 in
  let problem = uniform_problem ~system ~graph ~slack:1.3 in
  (match solve_via "lp" ~candidates:[ 0; 6 ] problem with
  | Some r ->
      let f = r.Outcome.placement in
      let loads = Placement.node_loads problem f in
      let worst = Array.fold_left Float.max 0. loads in
      Printf.printf
        "Lin-design: system load %.2f on ONE node regardless of its capacity;\n\
         resilience 0 (single point of failure).\n\
         Placement (grid 3x3, Thm 1.2): load spread over %d nodes, max node load\n\
         %.2f = %.2fx its declared capacity (guarantee: <= 3x), delay %.4f,\n\
         resilience %d.\n"
        lin_load
        (List.length (Placement.used_nodes f))
        worst
        (Placement.max_violation problem f)
        (Delay.avg_max_delay problem f)
        (Qp_quorum.Availability.resilience system)
  | None -> ());
  print_endline
    "Reading: design-only formulations minimize delay with no handle on load -\n\
     whatever node is central absorbs everything. The placement formulation keeps\n\
     per-node load within a declared capacity (up to the proven blow-up factor)\n\
     and preserves the system's fault tolerance."

(* ------------------------------------------------------------------ *)
(* E13 — strategy re-optimization ablation                             *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13  Ablation: re-optimizing the access strategy through a placement";
  let tbl =
    Table.create
      [ ("system", Table.Left); ("topology", Table.Left);
        ("delay (uniform p)", Table.Right); ("delay (optimized p)", Table.Right);
        ("improvement", Table.Right); ("support |p>0|", Table.Right) ]
  in
  let rng = Rng.create 71 in
  List.iter
    (fun (name, system) ->
      List.iter
        (fun topo ->
          let n = 12 in
          let graph = topology topo rng n in
          let problem = uniform_problem ~system ~graph ~slack:1.2 in
          match solve_via "lp" ~candidates:[ 0; 6 ] problem with
          | None -> ()
          | Some r ->
              let f = r.Outcome.placement in
              (* Budget = what the placement already uses (cf. the
                 strategy_tuning example). *)
              let achieved = Placement.node_loads problem f in
              let caps =
                Array.mapi (fun v c -> Float.max c achieved.(v)) problem.Problem.capacities
              in
              let relaxed =
                Problem.make_qpp ~metric:problem.Problem.metric ~capacities:caps
                  ~system ~strategy:problem.Problem.strategy ()
              in
              (match Strategy_opt.optimize relaxed f with
              | None -> ()
              | Some o ->
                  let support =
                    Array.fold_left
                      (fun c x -> if x > 1e-9 then c + 1 else c)
                      0 o.Strategy_opt.strategy
                  in
                  Table.add_rowf tbl "%s|%s|%.4f|%.4f|%.1f%%|%d/%d" name topo
                    o.Strategy_opt.input_delay o.Strategy_opt.delay
                    (Float.max 0.
                       (100.
                       *. (o.Strategy_opt.input_delay -. o.Strategy_opt.delay)
                       /. o.Strategy_opt.input_delay))
                    support
                    (Quorum.n_quorums system)))
        [ "waxman"; "geometric" ])
    [ ("grid 3x3", Grid_qs.make 3); ("majority 3/5", Majority_qs.make ~n:5 ~t:3);
      ("FPP q=2", Qp_quorum.Fpp_qs.make 2) ];
  Table.print tbl;
  print_endline
    "Claim: with the placement fixed and its achieved node loads as the budget,\n\
     re-optimizing p never hurts and typically trims delay by skewing accesses\n\
     toward well-placed quorums (support shrinks below the full family)."

(* ------------------------------------------------------------------ *)
(* E14 — the price of Byzantine tolerance + probe complexity           *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14  Byzantine quorum systems: the delay price of overlap, probe complexity";
  let module B = Qp_quorum.Byzantine_qs in
  let module Probe = Qp_quorum.Probe in
  let rng = Rng.create 73 in
  let n_nodes = 14 in
  let graph = topology "waxman" rng n_nodes in
  let tbl =
    Table.create
      [ ("system", Table.Left); ("quorum size", Table.Right); ("overlap", Table.Right);
        ("masking f", Table.Right); ("load", Table.Right);
        ("avg max-delay", Table.Right); ("probes (p=0.1)", Table.Right) ]
  in
  let probe_rng = Rng.create 74 in
  let median =
    Qp_graph.Graph_props.one_median (Qp_graph.Metric.of_graph graph)
  in
  List.iter
    (fun (name, system) ->
      let strategy = Strategy.uniform system in
      let problem = uniform_problem ~system ~graph ~slack:1.3 in
      (* These majority families have up to C(9,5) = 126 quorums - far
         beyond the LP's practical size - so all systems are placed by
         the same greedy-closest heuristic for a like-for-like
         comparison. *)
      match solve_via "greedy" ~source:median problem with
      | None -> Printf.printf "(%s infeasible)\n" name
      | Some o ->
          let f = o.Outcome.placement in
          let sizes = Array.map Array.length (Quorum.quorums system) in
          let probes = Probe.estimate probe_rng system ~p:0.1 ~samples:2000 in
          Table.add_rowf tbl "%s|%d|%d|%d|%.3f|%.4f|%.2f" name
            (Array.fold_left max 0 sizes)
            (B.intersection_degree system)
            (B.max_masking_f system)
            (Strategy.system_load system strategy)
            (Delay.avg_max_delay problem f)
            probes.Probe.mean_probes)
    [
      ("crash majority 5/9", Majority_qs.make ~n:9 ~t:5);
      ("dissemination f=1 (n=9)", B.dissemination_majority ~n:9 ~f:1);
      ("dissemination f=2 (n=9)", B.dissemination_majority ~n:9 ~f:2);
      ("masking f=1 (n=9)", B.masking_majority ~n:9 ~f:1);
      ("masking f=2 (n=9)", B.masking_majority ~n:9 ~f:2);
    ];
  Table.print tbl;
  print_endline
    "Reading: tolerating f Byzantine servers forces quorum overlaps of f+1 (self-\n\
     verifying data) or 2f+1 (masking), which inflates quorum size, per-element\n\
     load, access delay AND probe complexity - the full systems cost of the\n\
     stronger failure model, measured through the same placement pipeline."

(* ------------------------------------------------------------------ *)
(* E15 — placement repair under node churn                             *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "E15  Node churn: minimal repair vs full re-solve";
  let rng = Rng.create 79 in
  let n = 14 in
  let graph = topology "waxman" rng n in
  let system = Grid_qs.make 3 in
  let problem = uniform_problem ~system ~graph ~slack:1.6 in
  match solve_via "lp" ~candidates:[ 0; 7 ] problem with
  | None -> print_endline "(infeasible)"
  | Some solved ->
      let f = solved.Outcome.placement in
      let tbl =
        Table.create
          [ ("dead nodes", Table.Right); ("elements moved", Table.Right);
            ("delay before", Table.Right); ("after repair", Table.Right);
            ("full re-solve", Table.Right); ("repair/re-solve", Table.Right) ]
      in
      List.iter
        (fun k ->
          (* Kill the k busiest hosts - the worst case for repair. *)
          let loads = Placement.node_loads problem f in
          let by_load =
            List.sort
              (fun a b -> compare loads.(b) loads.(a))
              (List.init n (fun v -> v))
          in
          let dead = List.filteri (fun i _ -> i < k) by_load in
          match
            (Repair.repair problem f ~dead, Repair.degradation_vs_resolve problem f ~dead)
          with
          | Some r, Some (repaired, resolved) ->
              Table.add_rowf tbl "%d|%d|%.4f|%.4f|%.4f|%.2f" k
                (List.length r.Repair.moved) r.Repair.delay_before repaired resolved
                (repaired /. resolved)
          | _ -> Table.add_rowf tbl "%d|-|-|infeasible|-|-" k)
        [ 1; 2; 3 ];
      Table.print tbl;
      print_endline
        "Reading: patching only the displaced replicas (greedy, toward client-near\n\
         survivors) stays close to a full Theorem 1.2 re-solve while moving a\n\
         fraction of the data - the operational story for churn."

(* ------------------------------------------------------------------ *)
(* E16 — closed-loop resilience engine vs static baseline              *)
(* ------------------------------------------------------------------ *)

let e16 () =
  section "E16  Closed-loop resilience: adaptive engine vs static strategy under churn";
  let module Engine = Qp_runtime.Engine in
  let module Retry = Qp_runtime.Retry in
  let module Failure = Qp_runtime.Failure in
  let rng = Rng.create 83 in
  let n = 14 in
  let graph = topology "waxman" rng n in
  let system = Majority_qs.make ~n:5 ~t:3 in
  let problem = uniform_problem ~system ~graph ~slack:1.5 in
  let placement =
    match solve_via "lp" ~candidates:[ 0; 7 ] problem with
    | Some r -> r.Outcome.placement
    | None -> failwith "infeasible"
  in
  let retry =
    Retry.fixed ~timeout:(4. *. Metric.diameter problem.Problem.metric) ~max_attempts:3
  in
  let accesses = 600 in
  let static_run fm =
    let base = Qp_sim.Fault_sim.default_config ~problem ~placement ~failure_model:fm in
    Qp_sim.Fault_sim.run
      { base with Qp_sim.Fault_sim.retry; accesses_per_client = accesses; seed = 5 }
  in
  let engine_run ?repair ~adaptive fm =
    let base = Engine.default_config ~adaptive ?repair ~problem ~placement ~failure:fm () in
    Engine.run { base with Engine.retry; accesses_per_client = accesses; seed = 5 }
  in
  (* Sanity anchor: with no failures the engine must reproduce the
     static strategy's analytic average max-delay (the adaptive layer
     falls back to the static optimum when the detector is healthy). *)
  let ff = engine_run ~adaptive:true (Failure.Static 0.) in
  Printf.printf
    "failure-free check: simulated mean delay %.4f vs analytic %.4f (error %.2f%%)\n\n"
    ff.Engine.mean_delay_success ff.Engine.analytic_delay
    (100.
    *. Float.abs (ff.Engine.mean_delay_success -. ff.Engine.analytic_delay)
    /. ff.Engine.analytic_delay);
  let tbl =
    Table.create
      ~title:
        "Dynamic mtbf/mttr sweep, equal retry budget (3 attempts, fixed timeout)"
      [ ("mtbf/mttr", Table.Right); ("node avail", Table.Right);
        ("static avail", Table.Right); ("adaptive avail", Table.Right);
        ("gain", Table.Right); ("static delay", Table.Right);
        ("adaptive delay", Table.Right) ]
  in
  List.iter
    (fun (mtbf, mttr) ->
      let fm = Failure.Dynamic { mtbf; mttr } in
      let s = static_run fm in
      let a = engine_run ~adaptive:true fm in
      Table.add_rowf tbl "%.0f/%.0f|%.3f|%.4f|%.4f|%+.4f|%.3f|%.3f" mtbf mttr
        (Failure.node_availability fm)
        s.Qp_sim.Fault_sim.availability a.Engine.availability
        (a.Engine.availability -. s.Qp_sim.Fault_sim.availability)
        s.Qp_sim.Fault_sim.mean_delay_success a.Engine.mean_delay_success)
    [ (85., 15.); (80., 20.); (60., 40.); (40., 40.) ];
  Table.print tbl;
  (* The full loop: hedged retries + automatic placement repair. *)
  let tbl2 =
    Table.create ~title:"full loop under heavy churn (mtbf 60 / mttr 40)"
      [ ("configuration", Table.Left); ("avail", Table.Right); ("delay", Table.Right);
        ("hedges won", Table.Right); ("repairs", Table.Right); ("moved", Table.Right) ]
  in
  let fm = Failure.Dynamic { mtbf = 60.; mttr = 40. } in
  let hedged =
    Retry.exponential ~jitter:0.2
      ~hedge_after:(0.5 *. retry.Retry.timeout)
      ~timeout:retry.Retry.timeout ~base:(0.2 *. retry.Retry.timeout) ~max_attempts:3 ()
  in
  List.iter
    (fun (label, adaptive, rp, rt) ->
      let base = Engine.default_config ~adaptive ?repair:rp ~problem ~placement ~failure:fm () in
      let r = Engine.run { base with Engine.retry = rt; accesses_per_client = accesses; seed = 5 } in
      let moved = List.fold_left (fun acc e -> acc + e.Engine.moved) 0 r.Engine.repairs in
      Table.add_rowf tbl2 "%s|%.4f|%.3f|%d/%d|%d|%d" label r.Engine.availability
        r.Engine.mean_delay_success r.Engine.hedges_won r.Engine.hedges_launched
        (List.length r.Engine.repairs) moved)
    [
      ("static strategy", false, None, retry);
      ("adaptive", true, None, retry);
      ("adaptive + hedge", true, None, hedged);
      ("adaptive + hedge + repair", true, Some Engine.default_trigger, hedged);
    ];
  Table.print tbl2;
  print_endline
    "Claims: at equal retry budget the adaptive engine strictly beats the static\n\
     baseline on availability under correlated churn (and does not pay in delay) -\n\
     the detector steers accesses away from down replicas instead of burning\n\
     timeouts on them. Hedged retries shave the tail; automatic repair migrates\n\
     replicas off long-dead nodes. With no failures the engine reproduces the\n\
     paper's analytic delay (the static optimum is recovered exactly)."

(* ------------------------------------------------------------------ *)
(* E17 — live churn: cold vs warm re-solve vs bounded migration        *)
(* ------------------------------------------------------------------ *)

let e17 () =
  section
    "E17  Live churn: cold re-solve vs warm re-solve vs bounded-safe migration";
  let module Spec = Qp_instance.Spec in
  let module Delta = Qp_instance.Delta in
  let module Live = Qp_instance.Live in
  let fail_err e = failwith (Qp_util.Qp_error.to_string e) in
  let spec =
    { Spec.topology = "waxman"; nodes = 14; system = "grid:3";
      cap_slack = 1.6; seed = 17; jobs = 1 }
  in
  let live = match Live.of_spec spec with Ok l -> l | Error e -> fail_err e in
  let candidates = [ 0; 7 ] in
  let bound = 3. in
  Metric.reset_apsp_cache ();
  (* Pivot counts under a scoped registry, so cold and warm runs are
     measured in isolation from each other and the suite. *)
  let pivots_of f =
    let reg = Qp_obs.Metrics.create ~enabled:true () in
    let r = Qp_obs.Metrics.with_current reg f in
    let p =
      Option.value ~default:0.
        (List.assoc_opt "qp_simplex_pivots_total"
           (Qp_obs.Metrics.scalar_series reg))
    in
    (r, int_of_float p)
  in
  let resolve = Resolve.create ~candidates () in
  (* Initial solve fills the warm bases; churn is measured from here. *)
  let initial =
    match Resolve.solve resolve (Live.problem live) with
    | Some r -> r
    | None -> failwith "e17: initial solve infeasible"
  in
  let current = ref initial.Qpp_solver.placement in
  let ratio problem f =
    let loads = Placement.node_loads problem f in
    let caps = problem.Problem.capacities in
    let r = ref 0. in
    Array.iteri
      (fun v l ->
        if l > 1e-12 then
          r := Float.max !r (if caps.(v) > 1e-12 then l /. caps.(v) else infinity))
      loads;
    !r
  in
  (* Worst load/cap ratio over the intermediates a move sequence
     creates — the transient overload a deployment would experience
     mid-transition. The (shared) starting state is excluded: it is a
     property of the churn, not of the move order. *)
  let transient problem ~current moves =
    List.fold_left
      (fun acc f -> Float.max acc (ratio problem f))
      0.
      (Migrate.intermediates ~current moves)
  in
  (* The cold baseline swap: apply the displaced elements in element
     order, no planning. *)
  let naive_moves ~current ~target =
    let ms = ref [] in
    Array.iteri
      (fun e src ->
        if src <> target.(e) then
          ms := { Migrate.elem = e; src; dst = target.(e) } :: !ms)
      current;
    List.rev !ms
  in
  let rng = Rng.create 91 in
  let step_ops s =
    let edges = Array.of_list (Qp_graph.Graph.edges (Live.graph live)) in
    let ne = Array.length edges in
    let i1 = Rng.int rng ne in
    let i2 = (i1 + 1 + Rng.int rng (ne - 1)) mod ne in
    let scale (u, v, w) =
      let f = if Rng.bool rng then 2.0 else 0.5 in
      Delta.Set_edge { u; v; length = w *. f }
    in
    let base = [ scale edges.(i1); scale edges.(i2) ] in
    if s mod 3 = 0 then begin
      (* Capacity dip on the busiest node: the step that makes move
         order matter (and exercises the planner's drains). Mild
         enough that the starting state stays under the bound. *)
      let loads = Placement.node_loads (Live.problem live) !current in
      let busiest = ref 0 in
      Array.iteri (fun v l -> if l > loads.(!busiest) then busiest := v) loads;
      let cap = (Live.capacities live).(!busiest) in
      Delta.Set_capacity { node = !busiest; cap = cap *. 0.85 } :: base
    end
    else base
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "%d churn steps on waxman n=%d grid:3 (2 edge scalings per step, \
            capacity dip every 3rd)"
           6 spec.Spec.nodes)
      [ ("step", Table.Right); ("ops", Table.Right);
        ("cold pivots", Table.Right); ("warm pivots", Table.Right);
        ("moves", Table.Right); ("drains", Table.Right);
        ("transient naive", Table.Right); ("transient planned", Table.Right);
        ("plan safe", Table.Right) ]
  in
  let tot_cold = ref 0 in
  let tot_warm = ref 0 in
  let objectives_match = ref true in
  let bounded_safe = ref true in
  let worst_naive = ref 0. in
  let worst_planned = ref 0. in
  for s = 1 to 6 do
    let ops = step_ops s in
    (match Live.apply live ops with Ok () -> () | Error e -> fail_err e);
    let problem = Live.problem live in
    let cold, pc =
      pivots_of (fun () -> Qpp_solver.solve ~alpha:2. ~candidates problem)
    in
    let warm, pw = pivots_of (fun () -> Resolve.solve resolve problem) in
    match (cold, warm) with
    | Some c, Some w ->
        tot_cold := !tot_cold + pc;
        tot_warm := !tot_warm + pw;
        if
          Float.abs (c.Qpp_solver.objective -. w.Qpp_solver.objective)
          > 1e-6 *. Float.max 1. (Float.abs c.Qpp_solver.objective)
        then objectives_match := false;
        let target = w.Qpp_solver.placement in
        let naive =
          transient problem ~current:!current
            (naive_moves ~current:!current ~target)
        in
        worst_naive := Float.max !worst_naive naive;
        (match Migrate.plan ~bound problem ~current:!current ~target with
        | Error _ ->
            bounded_safe := false;
            Table.add_rowf tbl "%d|%d|%d|%d|-|-|%.3f|-|no plan" s
              (List.length ops) pc pw naive
        | Ok plan ->
            let safe =
              match Migrate.check problem ~current:!current ~target plan with
              | Ok () -> true
              | Error _ -> false
            in
            if not safe then bounded_safe := false;
            let planned = transient problem ~current:!current plan.Migrate.moves in
            worst_planned := Float.max !worst_planned planned;
            Table.add_rowf tbl "%d|%d|%d|%d|%d|%d|%.3f|%.3f|%b" s
              (List.length ops) pc pw
              (List.length plan.Migrate.moves)
              plan.Migrate.drains naive planned safe;
            current := target)
    | _ -> failwith "e17: churn step infeasible"
  done;
  Table.print tbl;
  let _, _, partial = Metric.apsp_cache_stats () in
  Printf.printf
    "\ntotal pivots: cold %d, warm %d (%.0f%% saved); APSP partial rebuilds: %d\n"
    !tot_cold !tot_warm
    (100. *. (1. -. (float_of_int !tot_warm /. float_of_int (max 1 !tot_cold))))
    partial;
  Printf.printf "worst transient load/cap: naive swap %.3f, planned %.3f (bound %g)\n"
    !worst_naive !worst_planned bound;
  (* Machine-checkable assertions for the CI churn smoke. *)
  Printf.printf "e17-assert: warm_lt_cold=%b\n" (!tot_warm < !tot_cold);
  Printf.printf "e17-assert: objectives_match=%b\n" !objectives_match;
  Printf.printf "e17-assert: bounded_safe=%b\n" !bounded_safe;
  Printf.printf "e17-assert: migration_beats_cold=%b\n"
    (!worst_planned < !worst_naive -. 1e-9);
  print_endline
    "\nReading: small deltas re-solve warm in a fraction of the cold pivot count\n\
     at the identical objective (the basis survives the perturbation), the APSP\n\
     cache rebuilds only affected rows, and the planned migration keeps every\n\
     intermediate placement within the paper's load bound while the naive swap\n\
     overshoots it - the live-reconfiguration story in one table."

(* ------------------------------------------------------------------ *)
(* E18 — serve saturation: pooled dispatch scaling and the cache path  *)
(* ------------------------------------------------------------------ *)

let e18 () =
  section
    "E18  Serve saturation: pooled solve dispatch and the placement cache";
  let module Loadgen = Qp_serve.Loadgen in
  let module Spec = Qp_instance.Spec in
  let fail_err e = failwith (Qp_util.Qp_error.to_string e) in
  (* Sized so one greedy solve costs a few milliseconds — well above
     the event loop's per-request overhead (else pooling has nothing
     to parallelize) yet cheap enough that every cell completes
     hundreds of requests. *)
  let spec =
    { Spec.topology = "waxman"; nodes = 48; system = "grid:4";
      cap_slack = 1.6; seed = 181; jobs = 1 }
  in
  let base ~duration ~unique =
    { Loadgen.default_config with
      Loadgen.duration_s = duration;
      mix = [ (Qp_serve.Protocol.Solve, 1.) ];
      spec = Some spec;
      (* greedy keeps a single solve cheap enough that every cell
         completes hundreds of requests — the sweep measures dispatch,
         not LP tail noise. *)
      options = { Qp_serve.Protocol.default_options with algorithm = "greedy" };
      seed = 18;
      timeout_ms = Some 10_000;
      unique_specs = unique
    }
  in
  let sweep_or_fail cfg =
    match Loadgen.sweep cfg with Ok cells -> cells | Error e -> fail_err e
  in
  (* Raw solve-throughput scaling: cache off and a distinct spec per
     request, so neither the placement cache nor single-flight dedup
     can coalesce work — the pool either scales or it doesn't. *)
  let scaling =
    sweep_or_fail
      { Loadgen.base = base ~duration:1.5 ~unique:true;
        server_spec = spec; server_jobs = [ 1; 4 ];
        connections_sweep = [ 2; 8 ]; cache_capacity = 0; queue_depth = 64 }
  in
  (* The hit path: every request the same spec, cache on — after the
     first miss the server should answer from the LRU. *)
  let cached =
    sweep_or_fail
      { Loadgen.base = base ~duration:1.0 ~unique:false;
        server_spec = spec; server_jobs = [ 4 ];
        connections_sweep = [ 8 ]; cache_capacity = 256; queue_depth = 64 }
  in
  let cache_int c k = Option.value ~default:0 (List.assoc_opt k c.Loadgen.sw_cache) in
  let hit_rate c =
    let h = cache_int c "hits" + cache_int c "inflight_joins" in
    let t = h + cache_int c "misses" in
    if t = 0 then 0. else float_of_int h /. float_of_int t
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "closed-loop sweep on %s n=%d %s (fresh in-process server per cell)"
           spec.Spec.topology spec.Spec.nodes spec.Spec.system)
      [ ("mode", Table.Left); ("jobs", Table.Right); ("conns", Table.Right);
        ("rps", Table.Right); ("p50 ms", Table.Right); ("p99 ms", Table.Right);
        ("ok", Table.Right); ("hit rate", Table.Right) ]
  in
  let add_cells mode cells =
    List.iter
      (fun c ->
        let r = c.Loadgen.sw_report in
        Table.add_rowf tbl "%s|%d|%d|%.0f|%.2f|%.2f|%d|%.2f" mode
          c.Loadgen.sw_jobs c.Loadgen.sw_connections r.Loadgen.throughput_rps
          (Stats.percentile r.Loadgen.latencies_ms 50.)
          (Stats.percentile r.Loadgen.latencies_ms 99.)
          r.Loadgen.ok (hit_rate c))
      cells
  in
  add_cells "unique (cache off)" scaling;
  add_cells "shared (cache on)" cached;
  Table.print tbl;
  let best jobs =
    List.fold_left
      (fun acc c ->
        if c.Loadgen.sw_jobs = jobs then
          Float.max acc c.Loadgen.sw_report.Loadgen.throughput_rps
        else acc)
      0. scaling
  in
  let clean =
    List.for_all
      (fun c ->
        let r = c.Loadgen.sw_report in
        r.Loadgen.transport_errors = 0 && r.Loadgen.ok > 0)
      (scaling @ cached)
  in
  let best_hit =
    List.fold_left (fun acc c -> Float.max acc (hit_rate c)) 0. cached
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "\nbest throughput: jobs=1 %.0f rps, jobs=4 %.0f rps (%.2fx on %d cores)\n"
    (best 1) (best 4)
    (best 4 /. Float.max 1e-9 (best 1))
    cores;
  (* Machine-checkable assertions for the CI saturation gate. The gate
     enforces [jobs4_gt_jobs1] only when [scaling_expected] — pooled
     dispatch cannot outrun the inline loop on a single core, where
     CPU-bound solves serialize no matter how they are dispatched. *)
  Printf.printf "e18-assert: jobs4_gt_jobs1=%b\n" (best 4 > best 1);
  Printf.printf "e18-assert: scaling_expected=%b\n" (cores >= 2);
  Printf.printf "e18-assert: cache_hits_dominate=%b\n" (best_hit > 0.5);
  Printf.printf "e18-assert: all_cells_clean=%b\n" clean;
  print_endline
    "\nReading: with a distinct spec per request the pooled server outscales the\n\
     inline one - the event loop stays I/O-only while worker domains run the\n\
     solves - and with a shared spec the canonical placement cache answers\n\
     nearly every request from the LRU (single-flight absorbs the stampede on\n\
     the first miss). Served bytes are identical in every cell; only the\n\
     throughput moves."

(* ------------------------------------------------------------------ *)
(* E19 — Scaling the solve core: auto dispatch and the flat metrics    *)
(* ------------------------------------------------------------------ *)

let e19 () =
  section
    "E19  Solve-core scaling: exact tree dispatch and a size-doubling series";
  let module Spec = Qp_instance.Spec in
  let module Json = Qp_obs.Json in
  let now = Qp_obs.Core.now in
  let build spec =
    match Spec.build spec with
    | Ok p -> p
    | Error e -> failwith (Qp_util.Qp_error.to_string e)
  in
  let tree_spec ~nodes ~system ~seed =
    { Spec.default with Spec.topology = "tree"; nodes; system;
      cap_slack = 1.5; seed }
  in
  (* Same spec-to-params mapping as the CLI and the server: topology
     and system hints steer [auto] toward a specialist worth trying. *)
  let params_of spec =
    let topology_hint, system_hint = Spec.solver_hints spec in
    { Solver.default_params with Solver.seed = spec.Spec.seed + 1;
      topology_hint; system_hint }
  in
  let solve_with name spec p =
    let s = Solver.find_exn name in
    match s.Solver.solve (params_of spec) p with
    | Ok o -> o
    | Error e -> failwith (name ^ ": " ^ Qp_util.Qp_error.to_string e)
  in
  let time f =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
  in
  (* Part 1 - exactness: on a small tree instance the dispatcher must
     pick the tree specialist and return the brute-force optimum. *)
  let spec8 = tree_spec ~nodes:8 ~system:"grid:2" ~seed:191 in
  let p8 = build spec8 in
  let auto8 = solve_with "auto" spec8 p8 in
  let exact8 = solve_with "exact" spec8 p8 in
  let auto_picked_tree = auto8.Outcome.solver = "tree" in
  let auto_is_exact =
    Float.abs (auto8.Outcome.objective -. exact8.Outcome.objective) <= 1e-9
  in
  let tbl1 =
    Table.create ~title:"auto dispatch vs exhaustive search (tree, n=8, grid:2)"
      [ ("alg", Table.Left); ("dispatched", Table.Left);
        ("objective", Table.Right); ("load viol", Table.Right) ]
  in
  Table.add_rowf tbl1 "auto|%s|%.6f|%.3f" auto8.Outcome.solver
    auto8.Outcome.objective auto8.Outcome.load_violation;
  Table.add_rowf tbl1 "exact|%s|%.6f|%.3f" exact8.Outcome.solver
    exact8.Outcome.objective exact8.Outcome.load_violation;
  Table.print tbl1;
  (* Part 2 - head-to-head at equal n: the dispatched tree solver vs
     the LP pipeline on the same instance. Best-of-3 for the fast side
     (scheduler noise dominates millisecond runs); one LP run suffices,
     it is the slow side by orders of magnitude. The CI gate compares
     deterministic work counters — simplex pivots across the LP's
     candidate sweep vs branch-and-bound nodes — because wall-clock
     ratios flake on shared runners; the wall speedup stays as an
     informational line. *)
  let spec_h2h = tree_spec ~nodes:24 ~system:"grid:2" ~seed:192 in
  let p_h2h = build spec_h2h in
  let auto_h2h, auto_wall =
    let best = ref infinity and last = ref None in
    for _ = 1 to 3 do
      let o, w = time (fun () -> solve_with "auto" spec_h2h p_h2h) in
      if w < !best then best := w;
      last := Some o
    done;
    (Option.get !last, !best)
  in
  (* Pivot count under a scoped registry: pool workers merge their
     series back into it, so the sum covers every candidate-source LP
     and nothing else. *)
  let pivots_of f =
    let reg = Qp_obs.Metrics.create ~enabled:true () in
    let r = Qp_obs.Metrics.with_current reg f in
    let p =
      Option.value ~default:0.
        (List.assoc_opt "qp_simplex_pivots_total"
           (Qp_obs.Metrics.scalar_series reg))
    in
    (r, int_of_float p)
  in
  let (lp_h2h, lp_pivots), lp_wall =
    time (fun () -> pivots_of (fun () -> solve_with "lp" spec_h2h p_h2h))
  in
  let tree_nodes =
    match Outcome.detail auto_h2h "search_nodes" with
    | Some v -> int_of_float v
    | None -> max_int (* not the tree solver: fail the work gate *)
  in
  let speedup = lp_wall /. Float.max 1e-9 auto_wall in
  let auto_work_10x = lp_pivots >= 10 * tree_nodes in
  let tbl2 =
    Table.create ~title:"auto vs lp at equal size (tree, n=24, grid:2)"
      [ ("alg", Table.Left); ("dispatched", Table.Left);
        ("objective", Table.Right); ("wall s", Table.Right);
        ("work", Table.Right) ]
  in
  Table.add_rowf tbl2 "auto|%s|%.6f|%.4f|%d nodes" auto_h2h.Outcome.solver
    auto_h2h.Outcome.objective auto_wall tree_nodes;
  Table.add_rowf tbl2 "lp|%s|%.6f|%.4f|%d pivots" lp_h2h.Outcome.solver
    lp_h2h.Outcome.objective lp_wall lp_pivots;
  Table.print tbl2;
  Printf.printf
    "\nhead-to-head: %d lp pivots vs %d tree search nodes; wall speedup \
     %.1fx (informational, auto best-of-3 vs one lp run)\n"
    lp_pivots tree_nodes speedup;
  (* Part 3 - scaling series: double n under a wall budget. The floor
     of 480 (10x the largest default-suite instance, E18's n=48) always
     runs; beyond it a cell is attempted only while its projected cost
     (4x the previous cell - the work is quadratic in n) fits the
     remaining budget. Each completed cell becomes a qp-scaling/1
     record in BENCH_results.json. *)
  let budget = !scale_budget in
  let t_series = now () in
  let tbl3 =
    Table.create
      ~title:
        (Printf.sprintf
           "scaling series on tree topology, grid:2 (budget %.0fs)" budget)
      [ ("n", Table.Right); ("solver", Table.Left); ("build s", Table.Right);
        ("solve s", Table.Right); ("objective", Table.Right);
        ("rss MB", Table.Right) ]
  in
  let last_wall = ref 0. in
  let completed = ref [] in
  let skipped = ref [] in
  List.iter
    (fun n ->
      let elapsed = now () -. t_series in
      let projected = elapsed +. Float.max 0.05 (4. *. !last_wall) in
      if n <= 480 || projected <= budget then begin
        let spec = tree_spec ~nodes:n ~system:"grid:2" ~seed:(190 + n) in
        let p, build_wall = time (fun () -> build spec) in
        let o, solve_wall = time (fun () -> solve_with "auto" spec p) in
        let rss_kb =
          match Qp_obs.Core.max_rss_kb () with Some kb -> kb | None -> 0
        in
        last_wall := build_wall +. solve_wall;
        completed := (n, o) :: !completed;
        add_record
          (Json.Obj
             [ ("schema", Json.String "qp-scaling/1");
               ("n", Json.Int n);
               ("topology", Json.String "tree");
               ("system", Json.String "grid:2");
               ("solver", Json.String o.Outcome.solver);
               ("build_s", Json.Float build_wall);
               ("solve_s", Json.Float solve_wall);
               ("objective", Json.Float o.Outcome.objective);
               ("load_violation", Json.Float o.Outcome.load_violation);
               ("max_rss_kb", Json.Int rss_kb) ]);
        Table.add_rowf tbl3 "%d|%s|%.3f|%.3f|%.4f|%.0f" n o.Outcome.solver
          build_wall solve_wall o.Outcome.objective
          (float_of_int rss_kb /. 1024.)
      end
      else skipped := n :: !skipped)
    [ 60; 120; 240; 480; 960; 1920; 3840 ];
  Table.print tbl3;
  (match List.rev !skipped with
  | [] -> ()
  | ns ->
      Printf.printf "skipped over budget: %s\n"
        (String.concat ", " (List.map string_of_int ns)));
  let largest_n =
    List.fold_left (fun acc (n, _) -> max acc n) 0 !completed
  in
  let cells_clean =
    !completed <> []
    && List.for_all
         (fun (_, o) ->
           Float.is_finite o.Outcome.objective
           && o.Outcome.solver = "tree"
           && o.Outcome.load_violation <= 1. +. 1e-9)
         !completed
  in
  Printf.printf "largest completed cell: n=%d\n" largest_n;
  (* Machine-checkable assertions for the CI scaling-smoke gate. *)
  Printf.printf "e19-assert: auto_picked_tree=%b\n" auto_picked_tree;
  Printf.printf "e19-assert: auto_is_exact=%b\n" auto_is_exact;
  Printf.printf "e19-assert: auto_work_10x=%b\n" auto_work_10x;
  Printf.printf "e19-assert: scaling_reached_10x=%b\n" (largest_n >= 480);
  Printf.printf "e19-assert: scaling_cells_clean=%b\n" cells_clean;
  print_endline
    "\nReading: on tree topologies the registry's auto entry routes the solve\n\
     to the exact tree specialist - same optimum as exhaustive search, orders\n\
     of magnitude faster than the LP pipeline at equal size - and the flat\n\
     Bigarray metric lets the series double well past 10x the largest default\n\
     experiment without touching the LP path."

(* ------------------------------------------------------------------ *)
(* E20 — Geo scenarios: read/write mixes on embedded region RTT tables *)
(* ------------------------------------------------------------------ *)

let e20 () =
  section
    "E20  Geo scenarios: read/write-aware placement on region RTT tables";
  let module Scenario = Qp_scenario.Scenario in
  let module Runner = Qp_scenario.Runner in
  let module Rw_qs = Qp_quorum.Rw_qs in
  let run spec =
    match Runner.run spec with
    | Ok r -> r
    | Error e -> failwith ("scenario: " ^ Qp_util.Qp_error.to_string e)
  in
  (* Part 1 - the headline scenario: the aws-3 region table, the grid
     read/write protocol and a 90/10 read mix. The runner solves the
     placement under the rho-weighted strategy AND under the symmetric
     (50/50) mix with identical capacities; the claim under test is
     that the read-heavy-aware placement wins on pure read latency. *)
  let base =
    { Scenario.default with
      Scenario.name = "e20-aws3-read-heavy";
      topology = "region:aws-3";
      nodes = 9;
      system = "rw-grid:3";
      read_fraction = 0.9;
      offered_loads = [| 0.5; 1.0; 2.0 |];
      accesses_per_client = 200;
      service = Qp_sim.Access_sim.Exponential 1.0;
      alg = "auto";
      seed = 1 }
  in
  let r = run base in
  Printf.printf
    "aws-3 / rw-grid:3 at read_fraction 0.9: objective %.4f, read delay \
     %.4f, write delay %.4f, symmetric-placement read delay %.4f\n\n"
    r.Runner.outcome.Outcome.objective r.Runner.read_delay
    r.Runner.write_delay r.Runner.sym_read_delay;
  let tbl1 =
    Table.create ~title:"latency-throughput curve (aws-3, rho = 0.9)"
      [ ("offered", Table.Right); ("throughput", Table.Right);
        ("accesses", Table.Right); ("mean", Table.Right);
        ("p50", Table.Right); ("p95", Table.Right) ]
  in
  Array.iter
    (fun c ->
      Table.add_rowf tbl1 "%g|%.4f|%d|%.2f|%.2f|%.2f" c.Runner.offered
        c.Runner.throughput c.Runner.accesses c.Runner.mean c.Runner.p50
        c.Runner.p95)
    r.Runner.curve;
  Table.print tbl1;
  let tbl2 =
    Table.create ~title:"per-region delay CDF (per-client means, deciles)"
      [ ("region", Table.Left); ("clients", Table.Right);
        ("p0", Table.Right); ("p50", Table.Right); ("p100", Table.Right) ]
  in
  List.iter
    (fun c ->
      let at q =
        match List.assoc_opt q c.Runner.cdf with Some v -> v | None -> nan
      in
      Table.add_rowf tbl2 "%s|%d|%.2f|%.2f|%.2f" c.Runner.region
        c.Runner.count (at 0.) (at 50.) (at 100.))
    r.Runner.region_cdfs;
  Table.print tbl2;
  (* Part 2 - the mix sweep: re-optimize the placement at each read
     fraction and evaluate its pure read and write latency. The
     symmetric column is constant by construction (rho = 0.5 placement,
     same capacities); read-heavier mixes should pull read delay at or
     below it. One offered load keeps the sweep cheap - the solves are
     the point here, not the curve. *)
  let sweep_rhos = [ 0.5; 0.75; 0.9; 1.0 ] in
  let tbl3 =
    Table.create ~title:"read-fraction sweep (aws-3, rw-grid:3)"
      [ ("rho", Table.Right); ("objective", Table.Right);
        ("read delay", Table.Right); ("write delay", Table.Right);
        ("sym read delay", Table.Right) ]
  in
  let sweep =
    List.map
      (fun rho ->
        let s =
          run
            { base with
              Scenario.name = Printf.sprintf "e20-sweep-rho-%g" rho;
              read_fraction = rho;
              offered_loads = [| 1.0 |];
              accesses_per_client = 100 }
        in
        Table.add_rowf tbl3 "%g|%.4f|%.4f|%.4f|%.4f" rho
          s.Runner.outcome.Outcome.objective s.Runner.read_delay
          s.Runner.write_delay s.Runner.sym_read_delay;
        (rho, s))
      sweep_rhos
  in
  Table.print tbl3;
  (* Part 3 - skewed clients: a zipfian population on the same table.
     Informational (the skew moves the per-region CDFs); its record
     rides along for the CI schema validation. *)
  let zipf =
    run
      { base with
        Scenario.name = "e20-aws3-zipf";
        skew = Qp_scenario.Clients.Zipf 1.2;
        offered_loads = [| 1.0 |];
        accesses_per_client = 150 }
  in
  let tbl4 =
    Table.create ~title:"zipf 1.2 population: per-region delay CDF"
      [ ("region", Table.Left); ("clients", Table.Right);
        ("p50", Table.Right); ("p100", Table.Right) ]
  in
  List.iter
    (fun c ->
      let at q =
        match List.assoc_opt q c.Runner.cdf with Some v -> v | None -> nan
      in
      Table.add_rowf tbl4 "%s|%d|%.2f|%.2f" c.Runner.region c.Runner.count
        (at 50.) (at 100.))
    zipf.Runner.region_cdfs;
  Table.print tbl4;
  List.iter (fun res -> add_record (Runner.to_json res))
    (r :: zipf :: List.map snd sweep);
  (* Machine-checkable assertions for the CI scenario-smoke gate. *)
  let monotone cdf =
    let rec ok = function
      | (q1, v1) :: ((q2, v2) :: _ as rest) ->
          q1 <= q2 && v1 <= v2 +. 1e-12 && ok rest
      | _ -> true
    in
    ok cdf
  in
  let rw_beats_symmetric_read =
    r.Runner.read_delay +. 1e-9 < r.Runner.sym_read_delay
  in
  let intersection_preserved =
    match Rw_qs.of_string_opt base.Scenario.system with
    | Some (Ok rw) -> Rw_qs.intersection_ok rw
    | _ -> false
  in
  let cdfs_monotone =
    List.for_all
      (fun res ->
        List.for_all (fun c -> monotone c.Runner.cdf) res.Runner.region_cdfs)
      (r :: zipf :: List.map snd sweep)
  in
  let curve_complete =
    Array.length r.Runner.curve = Array.length base.Scenario.offered_loads
    && Array.for_all
         (fun c ->
           c.Runner.accesses > 0
           && Float.is_finite c.Runner.throughput
           && c.Runner.throughput > 0.)
         r.Runner.curve
  in
  let regions_covered =
    List.length r.Runner.region_cdfs = Array.length r.Runner.regions
    && List.for_all (fun c -> c.Runner.count > 0) r.Runner.region_cdfs
  in
  let sweep_read_monotone =
    (* placements optimized for read-heavier mixes never lose on read
       latency relative to the symmetric baseline *)
    List.for_all
      (fun (rho, s) ->
        rho < 0.75 || s.Runner.read_delay <= s.Runner.sym_read_delay +. 1e-9)
      sweep
  in
  Printf.printf "e20-assert: rw_beats_symmetric_read=%b\n"
    rw_beats_symmetric_read;
  Printf.printf "e20-assert: intersection_preserved=%b\n"
    intersection_preserved;
  Printf.printf "e20-assert: cdfs_monotone=%b\n" cdfs_monotone;
  Printf.printf "e20-assert: curve_complete=%b\n" curve_complete;
  Printf.printf "e20-assert: regions_covered=%b\n" regions_covered;
  Printf.printf "e20-assert: sweep_read_monotone=%b\n" sweep_read_monotone;
  print_endline
    "\nReading: on a real 3-region RTT table, optimizing the placement for\n\
     the measured 90/10 read mix buys a strictly lower read latency than\n\
     the mix-blind symmetric placement under identical capacities, while\n\
     the per-region CDFs expose exactly which geography pays for a write\n\
     quorum that must span rows and columns."

(* ------------------------------------------------------------------ *)

(* Execution order of [all] — F1/F2 sit between E7 and E8 to match the
   historical report layout. *)
let registry =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("f1", f1); ("f2", f2); ("e8", e8); ("e9", e9); ("e10", e10);
    ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15);
    ("e16", e16); ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20) ]

(* Small, fast subset exercised by the CI bench smoke job. E18 is
   excluded deliberately: its throughput numbers are nondeterministic
   and the smoke artifact is byte-diffed across runs. *)
let smoke = [ "e1"; "f1"; "f2" ]

let all () = List.iter (fun (_, f) -> f ()) registry

let by_name name =
  match List.assoc_opt name registry with
  | Some f -> f ()
  | None -> failwith ("unknown experiment " ^ name)
