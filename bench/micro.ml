(* Bechamel micro-benchmarks: one Test.make per core computational
   kernel. Results are printed as a table of OLS time estimates. *)

open Bechamel
open Toolkit
module Rng = Qp_util.Rng
module Generators = Qp_graph.Generators
module Grid_qs = Qp_quorum.Grid_qs
module Strategy = Qp_quorum.Strategy
open Qp_place

let dijkstra_test =
  let rng = Rng.create 1 in
  let g, _ = Generators.random_geometric rng 200 0.12 in
  Test.make ~name:"dijkstra n=200"
    (Staged.stage (fun () -> ignore (Qp_graph.Dijkstra.distances g 0)))

let apsp_test =
  let rng = Rng.create 2 in
  let g, _ = Generators.random_geometric rng 80 0.2 in
  Test.make ~name:"apsp n=80"
    (Staged.stage (fun () -> ignore (Qp_graph.Apsp.repeated_dijkstra g)))

let simplex_test =
  (* A representative SSQPP LP (grid 2x2 on 10 nodes). *)
  let rng = Rng.create 3 in
  let g, _ = Generators.random_geometric rng 10 0.5 in
  let system = Grid_qs.make 2 in
  let strategy = Strategy.uniform system in
  let caps = Array.make 10 (Grid_qs.element_load 2) in
  let problem = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
  let s = Problem.ssqpp_of_qpp problem 0 in
  Test.make ~name:"ssqpp LP solve (grid2, n=10)"
    (Staged.stage (fun () -> ignore (Lp_formulation.solve s)))

let rounding_test =
  let rng = Rng.create 4 in
  let g, _ = Generators.random_geometric rng 10 0.5 in
  let system = Grid_qs.make 2 in
  let strategy = Strategy.uniform system in
  let caps = Array.make 10 (Grid_qs.element_load 2) in
  let problem = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
  let s = Problem.ssqpp_of_qpp problem 0 in
  let sol = match Lp_formulation.solve s with Some x -> x | None -> assert false in
  Test.make ~name:"filter+ST round (grid2)"
    (Staged.stage (fun () ->
         ignore (Rounding.round_filtered s (Filtering.apply ~alpha:2. sol))))

let dp_test =
  let rng = Rng.create 5 in
  let g, _ = Generators.random_geometric rng 12 0.5 in
  let system = Grid_qs.make 3 in
  let strategy = Strategy.uniform system in
  let caps = Array.make 12 (Grid_qs.element_load 3) in
  let problem = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
  let s = Problem.ssqpp_of_qpp problem 0 in
  Test.make ~name:"subset DP (grid3)"
    (Staged.stage (fun () -> ignore (Exact.ssqpp_uniform_dp s)))

let layout_test =
  let rng = Rng.create 6 in
  let g, _ = Generators.random_geometric rng 110 0.15 in
  let k = 10 in
  let system = Grid_qs.make k in
  let strategy = Strategy.uniform system in
  let caps = Array.make 110 (Grid_qs.element_load k) in
  let problem = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
  let s = Problem.ssqpp_of_qpp problem 0 in
  Test.make ~name:"concentric layout (grid10, n=110)"
    (Staged.stage (fun () -> ignore (Grid_layout.place s)))

let sim_test =
  let rng = Rng.create 7 in
  let g, _ = Generators.random_geometric rng 12 0.5 in
  let system = Grid_qs.make 2 in
  let strategy = Strategy.uniform system in
  let caps = Array.make 12 1.0 in
  let problem = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
  let placement = [| 0; 1; 2; 3 |] in
  let cfg = Qp_sim.Access_sim.default_config ~problem ~placement in
  let cfg = { cfg with Qp_sim.Access_sim.accesses_per_client = 100 } in
  Test.make ~name:"simulate 1200 accesses"
    (Staged.stage (fun () -> ignore (Qp_sim.Access_sim.run cfg)))

let mcmf_test =
  Test.make ~name:"mcmf assignment 20x20"
    (Staged.stage (fun () ->
         let rng = Rng.create 8 in
         let net = Qp_assign.Mcmf.create 42 in
         for w = 0 to 19 do
           Qp_assign.Mcmf.add_edge net ~src:0 ~dst:(1 + w) ~capacity:1 ~cost:0.;
           Qp_assign.Mcmf.add_edge net ~src:(21 + w) ~dst:41 ~capacity:1 ~cost:0.;
           for t = 0 to 19 do
             Qp_assign.Mcmf.add_edge net ~src:(1 + w) ~dst:(21 + t) ~capacity:1
               ~cost:(Rng.uniform rng)
           done
         done;
         ignore (Qp_assign.Mcmf.min_cost_flow net ~source:0 ~sink:41 ())))

let solve_many_test =
  (* The Solver batch entry point end-to-end: spec -> problem -> greedy
     placement over a pool of small instances. *)
  let problems =
    List.filter_map
      (fun seed ->
        Result.to_option
          (Qp_instance.Spec.build
             { Qp_instance.Spec.default with
               Qp_instance.Spec.topology = "geometric";
               nodes = 12;
               system = "grid:2";
               cap_slack = 1.3;
               seed }))
      [ 11; 12; 13; 14; 15; 16; 17; 18 ]
  in
  let greedy = Solver.find_exn "greedy" in
  Test.make ~name:"solve_many greedy (8 x n=12)"
    (Staged.stage (fun () -> ignore (Solver.solve_many greedy problems)))

let run () =
  let tests =
    [ dijkstra_test; apsp_test; simplex_test; rounding_test; dp_test; layout_test;
      sim_test; mcmf_test; solve_many_test ]
  in
  let grouped = Test.make_grouped ~name:"qp" tests in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let tbl =
    Qp_util.Table.create ~title:"microbenchmarks (monotonic clock, OLS per-run estimate)"
      [ ("kernel", Qp_util.Table.Left); ("time/run", Qp_util.Table.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      match Analyze.OLS.estimates est with
      | Some (ns :: _) -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  let pretty ns =
    if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, ns) -> Qp_util.Table.add_rowf tbl "%s|%s" name (pretty ns))
    (List.sort compare !rows);
  Qp_util.Table.print tbl
